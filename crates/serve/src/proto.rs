//! The campaign-server message vocabulary, on top of [`crate::wire`]
//! frames.
//!
//! Payloads are flat, hand-rolled JSON objects (the workspace owns all
//! of its dependencies, so there is no serde): every field is either an
//! unsigned number or a string escaped with the same rules as the
//! checkpoint journal ([`nightvision::checkpoint::escape`]). Because
//! `"` is always escaped inside string values, searching for the literal
//! `"key": ` pattern cannot be spoofed by field *content* — a hostile
//! tenant name cannot inject fields.
//!
//! Decoders are total: any missing or ill-typed field becomes
//! [`WireError::BadMessage`], never a panic.

use nightvision::checkpoint::{escape, unescape};

use crate::job::{JobKind, JobSpec};
use crate::wire::WireError;

/// Extracts the raw text after `"key": ` in a flat object body, up to
/// (not including) the value's end. Number values only.
pub(crate) fn field_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return None;
    }
    rest[..digits].parse().ok()
}

/// Extracts and unescapes a string field.
pub(crate) fn field_str(body: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    // Scan for the closing quote, honouring escapes.
    let mut end = None;
    let mut escaped = false;
    for (i, ch) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if ch == '\\' {
            escaped = true;
        } else if ch == '"' {
            end = Some(i);
            break;
        }
    }
    unescape(&rest[..end?])
}

pub(crate) fn field_bool(body: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\": ");
    let start = body.find(&needle)? + needle.len();
    let rest = &body[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

pub(crate) fn missing(key: &str) -> WireError {
    WireError::BadMessage {
        detail: format!("missing or ill-typed field \"{key}\""),
    }
}

/// Why the server refused a job at admission. Typed — a client can
/// distinguish back-pressure from quota policy from shutdown and react
/// accordingly (back off, shed load, fail over).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The bounded job queue is full; retry with back-off.
    QueueFull {
        /// Queue depth at rejection time.
        depth: u64,
        /// The configured cap the depth had reached.
        cap: u64,
    },
    /// The tenant has too many jobs queued or running.
    TenantQuota {
        /// The tenant's active jobs at rejection time.
        active: u64,
        /// The configured per-tenant quota.
        quota: u64,
    },
    /// The server is draining and accepts no new work.
    Draining,
}

impl RejectReason {
    fn tag(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::TenantQuota { .. } => "tenant_quota",
            RejectReason::Draining => "draining",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, cap } => {
                write!(f, "queue full ({depth} of {cap})")
            }
            RejectReason::TenantQuota { active, quota } => {
                write!(f, "tenant quota exhausted ({active} of {quota})")
            }
            RejectReason::Draining => write!(f, "server draining"),
        }
    }
}

/// A client request.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Submit a job; the server streams updates back on this connection.
    Submit {
        /// The submitting tenant (quota accounting key).
        tenant: String,
        /// What to run.
        spec: JobSpec,
        /// Client-chosen idempotency key; `0` means none. A re-submission
        /// with the same tenant and a non-zero key returns the original
        /// job instead of admitting a duplicate, so a client that lost the
        /// `Accepted` reply to a dropped connection can retry blind.
        idem: u64,
    },
    /// Query one job's state (e.g. a job resumed after a crash, whose
    /// submitting connection is long gone).
    Status {
        /// The job id.
        job: u64,
    },
    /// Query server-wide counters and metrics.
    Stats,
    /// Stop admitting work; finish what is queued.
    Drain,
    /// Liveness heartbeat; the server answers [`Response::Pong`] with the
    /// same nonce. Keeps the connection inside the server's idle deadline
    /// and lets a client distinguish a slow job from a dead peer.
    Ping {
        /// Echo token, returned verbatim in the pong.
        nonce: u64,
    },
    /// Cancel a queued or running job. Queued jobs are dropped; running
    /// jobs have their core's cancellation flag raised and terminate at
    /// the next cooperative watchdog check with a typed `cancelled`
    /// outcome.
    Cancel {
        /// The job id.
        job: u64,
    },
    /// Re-attach to a job's outcome stream after a dropped connection.
    /// The server answers [`Response::Resuming`], replays every buffered
    /// update with `seq > last_seen_seq`, then continues live.
    ResumeStream {
        /// The job id.
        job: u64,
        /// Highest sequence number the client already holds (0 = none).
        last_seen_seq: u64,
    },
}

impl Request {
    /// Renders the request as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Submit { tenant, spec, idem } => format!(
                "{{\"op\": \"submit\", \"tenant\": \"{}\", \"idem\": {idem}, {}}}",
                escape(tenant),
                spec.encode_fields()
            ),
            Request::Status { job } => {
                format!("{{\"op\": \"status\", \"job\": {job}}}")
            }
            Request::Stats => "{\"op\": \"stats\"}".to_string(),
            Request::Drain => "{\"op\": \"drain\"}".to_string(),
            Request::Ping { nonce } => {
                format!("{{\"op\": \"ping\", \"nonce\": {nonce}}}")
            }
            Request::Cancel { job } => {
                format!("{{\"op\": \"cancel\", \"job\": {job}}}")
            }
            Request::ResumeStream { job, last_seen_seq } => format!(
                "{{\"op\": \"resume_stream\", \"job\": {job}, \"last_seen_seq\": {last_seen_seq}}}"
            ),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMessage`] on anything that is not a well-formed
    /// request.
    pub fn decode(payload: &str) -> Result<Request, WireError> {
        let op = field_str(payload, "op").ok_or_else(|| missing("op"))?;
        match op.as_str() {
            "submit" => Ok(Request::Submit {
                tenant: field_str(payload, "tenant").ok_or_else(|| missing("tenant"))?,
                spec: JobSpec::decode_fields(payload)?,
                // Absent on frames (and journal accept records) written
                // before idempotency keys existed; 0 means none.
                idem: field_u64(payload, "idem").unwrap_or(0),
            }),
            "status" => Ok(Request::Status {
                job: field_u64(payload, "job").ok_or_else(|| missing("job"))?,
            }),
            "stats" => Ok(Request::Stats),
            "drain" => Ok(Request::Drain),
            "ping" => Ok(Request::Ping {
                nonce: field_u64(payload, "nonce").ok_or_else(|| missing("nonce"))?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: field_u64(payload, "job").ok_or_else(|| missing("job"))?,
            }),
            "resume_stream" => Ok(Request::ResumeStream {
                job: field_u64(payload, "job").ok_or_else(|| missing("job"))?,
                last_seen_seq: field_u64(payload, "last_seen_seq")
                    .ok_or_else(|| missing("last_seen_seq"))?,
            }),
            other => Err(WireError::BadMessage {
                detail: format!("unknown op \"{other}\""),
            }),
        }
    }
}

/// One streamed per-trial outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TrialUpdate {
    /// The job the trial belongs to.
    pub job: u64,
    /// Per-job monotone sequence number (1-based) assigned by the server
    /// when the update is buffered. A resuming client hands its highest
    /// seen value back in [`Request::ResumeStream`]; updates at or below
    /// it are not replayed.
    pub seq: u64,
    /// The trial index within the job.
    pub index: u64,
    /// Outcome kind: `completed`, `failed`, `panicked`, `deadline`.
    pub outcome: String,
    /// The trial's value (0 for non-completions).
    pub value: u64,
    /// Whether the trial was resumed from a checkpoint rather than run
    /// by this server process.
    pub resumed: bool,
}

/// The final account of one finished job.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobReport {
    /// The job id.
    pub job: u64,
    /// Trials in the job.
    pub trials: u64,
    /// Trials that completed.
    pub completed: u64,
    /// Trials written off after exhausting every retry pass.
    pub quarantined: u64,
    /// Trials this process skipped because a checkpoint already had them.
    pub resumed_trials: u64,
    /// Exponential-backoff passes the job took to converge.
    pub passes: u64,
    /// FNV-1a-64 digest over the index-ordered outcome vector — the
    /// byte-identity witness for resume checks.
    pub digest: u64,
    /// The job's merged nv-obs metrics, rendered to JSON.
    pub metrics_json: String,
}

/// Server-wide counters, snapshotted by [`Request::Stats`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Jobs admitted (including journal-resumed ones).
    pub submitted: u64,
    /// Jobs finished.
    pub completed: u64,
    /// Jobs refused at admission, any reason.
    pub rejected: u64,
    /// Jobs re-queued from the journal at startup.
    pub resumed: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// Highest queue depth ever observed.
    pub peak_queue_depth: u64,
    /// The configured queue cap.
    pub queue_cap: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Server lifecycle metrics, rendered to JSON.
    pub metrics_json: String,
}

/// A server response.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// The job was admitted; updates will stream on this connection.
    Accepted {
        /// The assigned job id.
        job: u64,
        /// The server's boot epoch (count of journal boots). A resuming
        /// client that sees a different epoch knows the server restarted:
        /// sequence numbers restarted with it, so the client resets its
        /// cursor and deduplicates replays by trial index instead.
        epoch: u64,
    },
    /// The job was refused, with a typed reason.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// One per-trial outcome.
    Trial(TrialUpdate),
    /// The job finished; last message of a submit stream.
    Done(JobReport),
    /// Answer to [`Request::Status`].
    Status {
        /// The job id queried.
        job: u64,
        /// `queued`, `running`, `done` or `unknown`.
        state: String,
        /// The job digest (0 unless `done`).
        digest: u64,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::Drain`].
    Draining {
        /// Jobs still queued or running.
        pending: u64,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// The nonce from the ping, echoed back.
        nonce: u64,
    },
    /// Answer to [`Request::Cancel`], and the terminal message of a
    /// stream whose job was cancelled.
    Cancelled {
        /// The job id.
        job: u64,
        /// Where the cancel landed: `queued` (dropped before running),
        /// `running` (flag raised, trial will observe it), `done` (too
        /// late, the job already finished) or `unknown`.
        state: String,
    },
    /// Answer to [`Request::ResumeStream`]: replayed updates follow.
    Resuming {
        /// The job id.
        job: u64,
        /// The server's boot epoch (see [`Response::Accepted`]).
        epoch: u64,
        /// Oldest sequence number still buffered (0 = nothing buffered
        /// yet). If the client's cursor is older than `oldest - 1`, some
        /// updates have aged out of the ring and the replay has a gap.
        oldest: u64,
    },
    /// The server rejected the *message* (protocol violation).
    Error {
        /// What went wrong.
        detail: String,
    },
}

impl Response {
    /// Renders the response as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Response::Accepted { job, epoch } => {
                format!("{{\"re\": \"accepted\", \"job\": {job}, \"epoch\": {epoch}}}")
            }
            Response::Rejected { reason } => {
                let (a, b) = match reason {
                    RejectReason::QueueFull { depth, cap } => (*depth, *cap),
                    RejectReason::TenantQuota { active, quota } => (*active, *quota),
                    RejectReason::Draining => (0, 0),
                };
                format!(
                    "{{\"re\": \"rejected\", \"reason\": \"{}\", \"observed\": {a}, \
                     \"limit\": {b}}}",
                    reason.tag()
                )
            }
            Response::Trial(u) => format!(
                "{{\"re\": \"trial\", \"job\": {}, \"seq\": {}, \"index\": {}, \
                 \"outcome\": \"{}\", \"value\": {}, \"resumed\": {}}}",
                u.job,
                u.seq,
                u.index,
                escape(&u.outcome),
                u.value,
                u.resumed
            ),
            Response::Done(r) => format!(
                "{{\"re\": \"done\", \"job\": {}, \"trials\": {}, \"completed\": {}, \
                 \"quarantined\": {}, \"resumed_trials\": {}, \"passes\": {}, \
                 \"digest\": {}, \"metrics\": \"{}\"}}",
                r.job,
                r.trials,
                r.completed,
                r.quarantined,
                r.resumed_trials,
                r.passes,
                r.digest,
                escape(&r.metrics_json)
            ),
            Response::Status { job, state, digest } => format!(
                "{{\"re\": \"status\", \"job\": {job}, \"state\": \"{}\", \"digest\": {digest}}}",
                escape(state)
            ),
            Response::Stats(s) => format!(
                "{{\"re\": \"stats\", \"submitted\": {}, \"completed\": {}, \"rejected\": {}, \
                 \"resumed\": {}, \"queue_depth\": {}, \"peak_queue_depth\": {}, \
                 \"queue_cap\": {}, \"draining\": {}, \"metrics\": \"{}\"}}",
                s.submitted,
                s.completed,
                s.rejected,
                s.resumed,
                s.queue_depth,
                s.peak_queue_depth,
                s.queue_cap,
                s.draining,
                escape(&s.metrics_json)
            ),
            Response::Draining { pending } => {
                format!("{{\"re\": \"draining\", \"pending\": {pending}}}")
            }
            Response::Pong { nonce } => {
                format!("{{\"re\": \"pong\", \"nonce\": {nonce}}}")
            }
            Response::Cancelled { job, state } => format!(
                "{{\"re\": \"cancelled\", \"job\": {job}, \"state\": \"{}\"}}",
                escape(state)
            ),
            Response::Resuming { job, epoch, oldest } => format!(
                "{{\"re\": \"resuming\", \"job\": {job}, \"epoch\": {epoch}, \
                 \"oldest\": {oldest}}}"
            ),
            Response::Error { detail } => {
                format!("{{\"re\": \"error\", \"detail\": \"{}\"}}", escape(detail))
            }
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMessage`] on anything that is not a well-formed
    /// response.
    pub fn decode(payload: &str) -> Result<Response, WireError> {
        let re = field_str(payload, "re").ok_or_else(|| missing("re"))?;
        let job = || field_u64(payload, "job").ok_or_else(|| missing("job"));
        match re.as_str() {
            "accepted" => Ok(Response::Accepted {
                job: job()?,
                epoch: field_u64(payload, "epoch").ok_or_else(|| missing("epoch"))?,
            }),
            "rejected" => {
                let tag = field_str(payload, "reason").ok_or_else(|| missing("reason"))?;
                let a = field_u64(payload, "observed").ok_or_else(|| missing("observed"))?;
                let b = field_u64(payload, "limit").ok_or_else(|| missing("limit"))?;
                let reason = match tag.as_str() {
                    "queue_full" => RejectReason::QueueFull { depth: a, cap: b },
                    "tenant_quota" => RejectReason::TenantQuota {
                        active: a,
                        quota: b,
                    },
                    "draining" => RejectReason::Draining,
                    other => {
                        return Err(WireError::BadMessage {
                            detail: format!("unknown reject reason \"{other}\""),
                        })
                    }
                };
                Ok(Response::Rejected { reason })
            }
            "trial" => Ok(Response::Trial(TrialUpdate {
                job: job()?,
                seq: field_u64(payload, "seq").ok_or_else(|| missing("seq"))?,
                index: field_u64(payload, "index").ok_or_else(|| missing("index"))?,
                outcome: field_str(payload, "outcome").ok_or_else(|| missing("outcome"))?,
                value: field_u64(payload, "value").ok_or_else(|| missing("value"))?,
                resumed: field_bool(payload, "resumed").ok_or_else(|| missing("resumed"))?,
            })),
            "done" => Ok(Response::Done(JobReport {
                job: job()?,
                trials: field_u64(payload, "trials").ok_or_else(|| missing("trials"))?,
                completed: field_u64(payload, "completed").ok_or_else(|| missing("completed"))?,
                quarantined: field_u64(payload, "quarantined")
                    .ok_or_else(|| missing("quarantined"))?,
                resumed_trials: field_u64(payload, "resumed_trials")
                    .ok_or_else(|| missing("resumed_trials"))?,
                passes: field_u64(payload, "passes").ok_or_else(|| missing("passes"))?,
                digest: field_u64(payload, "digest").ok_or_else(|| missing("digest"))?,
                metrics_json: field_str(payload, "metrics").ok_or_else(|| missing("metrics"))?,
            })),
            "status" => Ok(Response::Status {
                job: job()?,
                state: field_str(payload, "state").ok_or_else(|| missing("state"))?,
                digest: field_u64(payload, "digest").ok_or_else(|| missing("digest"))?,
            }),
            "stats" => Ok(Response::Stats(ServerStats {
                submitted: field_u64(payload, "submitted").ok_or_else(|| missing("submitted"))?,
                completed: field_u64(payload, "completed").ok_or_else(|| missing("completed"))?,
                rejected: field_u64(payload, "rejected").ok_or_else(|| missing("rejected"))?,
                resumed: field_u64(payload, "resumed").ok_or_else(|| missing("resumed"))?,
                queue_depth: field_u64(payload, "queue_depth")
                    .ok_or_else(|| missing("queue_depth"))?,
                peak_queue_depth: field_u64(payload, "peak_queue_depth")
                    .ok_or_else(|| missing("peak_queue_depth"))?,
                queue_cap: field_u64(payload, "queue_cap").ok_or_else(|| missing("queue_cap"))?,
                draining: field_bool(payload, "draining").ok_or_else(|| missing("draining"))?,
                metrics_json: field_str(payload, "metrics").ok_or_else(|| missing("metrics"))?,
            })),
            "draining" => Ok(Response::Draining {
                pending: field_u64(payload, "pending").ok_or_else(|| missing("pending"))?,
            }),
            "pong" => Ok(Response::Pong {
                nonce: field_u64(payload, "nonce").ok_or_else(|| missing("nonce"))?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: job()?,
                state: field_str(payload, "state").ok_or_else(|| missing("state"))?,
            }),
            "resuming" => Ok(Response::Resuming {
                job: job()?,
                epoch: field_u64(payload, "epoch").ok_or_else(|| missing("epoch"))?,
                oldest: field_u64(payload, "oldest").ok_or_else(|| missing("oldest"))?,
            }),
            "error" => Ok(Response::Error {
                detail: field_str(payload, "detail").ok_or_else(|| missing("detail"))?,
            }),
            other => Err(WireError::BadMessage {
                detail: format!("unknown response \"{other}\""),
            }),
        }
    }
}

impl JobSpec {
    /// Renders the spec as the flat fields of a submit/journal body (no
    /// surrounding braces, so callers can prepend their own fields).
    pub fn encode_fields(&self) -> String {
        format!(
            "\"kind\": \"{}\", \"trials\": {}, \"seed\": {}, \"threads\": {}, \
             \"deadline_steps\": {}, \"retry_budget\": {}, \"flake_ppm\": {}",
            self.kind.tag(),
            self.trials,
            self.master_seed,
            self.threads,
            self.deadline_steps,
            self.retry_budget,
            self.flake_ppm
        )
    }

    /// Parses the flat fields written by [`JobSpec::encode_fields`].
    ///
    /// # Errors
    ///
    /// [`WireError::BadMessage`] on a missing or ill-typed field, an
    /// unknown kind, or a zero trial count.
    pub fn decode_fields(body: &str) -> Result<JobSpec, WireError> {
        let kind = match field_str(body, "kind")
            .ok_or_else(|| missing("kind"))?
            .as_str()
        {
            "nv_core" => JobKind::NvCore,
            "nv_s" => JobKind::NvS,
            other => {
                return Err(WireError::BadMessage {
                    detail: format!("unknown job kind \"{other}\""),
                })
            }
        };
        let trials = field_u64(body, "trials").ok_or_else(|| missing("trials"))?;
        if trials == 0 {
            return Err(WireError::BadMessage {
                detail: "a job must have at least one trial".to_string(),
            });
        }
        Ok(JobSpec {
            kind,
            trials: trials as usize,
            master_seed: field_u64(body, "seed").ok_or_else(|| missing("seed"))?,
            threads: field_u64(body, "threads").ok_or_else(|| missing("threads"))? as usize,
            deadline_steps: field_u64(body, "deadline_steps")
                .ok_or_else(|| missing("deadline_steps"))?,
            retry_budget: field_u64(body, "retry_budget").ok_or_else(|| missing("retry_budget"))?
                as usize,
            flake_ppm: field_u64(body, "flake_ppm").ok_or_else(|| missing("flake_ppm"))? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            kind: JobKind::NvCore,
            trials: 4,
            master_seed: 0xbeef,
            threads: 2,
            deadline_steps: 20_000,
            retry_budget: 3,
            flake_ppm: 250_000,
        }
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Submit {
                tenant: "acme \"quoted\", \"trials\": 9".to_string(),
                spec: spec(),
                idem: 0x1de4,
            },
            Request::Status { job: 7 },
            Request::Stats,
            Request::Drain,
            Request::Ping { nonce: 0xabcd },
            Request::Cancel { job: 11 },
            Request::ResumeStream {
                job: 11,
                last_seen_seq: 37,
            },
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn hostile_tenant_name_cannot_inject_fields() {
        // The tenant string carries what looks like a trials field; the
        // escaped quotes must keep it inert.
        let req = Request::Submit {
            tenant: "evil\", \"trials\": 1".to_string(),
            spec: spec(),
            idem: 0,
        };
        let decoded = Request::decode(&req.encode()).unwrap();
        let Request::Submit {
            tenant, spec: s, ..
        } = decoded
        else {
            panic!("submit expected");
        };
        assert_eq!(tenant, "evil\", \"trials\": 1");
        assert_eq!(s.trials, 4);
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Accepted { job: 3, epoch: 2 },
            Response::Rejected {
                reason: RejectReason::QueueFull { depth: 8, cap: 8 },
            },
            Response::Rejected {
                reason: RejectReason::TenantQuota {
                    active: 2,
                    quota: 2,
                },
            },
            Response::Rejected {
                reason: RejectReason::Draining,
            },
            Response::Trial(TrialUpdate {
                job: 3,
                seq: 9,
                index: 1,
                outcome: "completed".to_string(),
                value: 42,
                resumed: true,
            }),
            Response::Done(JobReport {
                job: 3,
                trials: 4,
                completed: 4,
                quarantined: 0,
                resumed_trials: 2,
                passes: 1,
                digest: 0xdead_beef,
                metrics_json: "{\"trials\": 4}".to_string(),
            }),
            Response::Status {
                job: 9,
                state: "done".to_string(),
                digest: 12,
            },
            Response::Stats(ServerStats {
                submitted: 10,
                completed: 8,
                rejected: 1,
                resumed: 1,
                queue_depth: 1,
                peak_queue_depth: 4,
                queue_cap: 8,
                draining: false,
                metrics_json: "{}".to_string(),
            }),
            Response::Draining { pending: 2 },
            Response::Pong { nonce: 0x9e110 },
            Response::Cancelled {
                job: 6,
                state: "running".to_string(),
            },
            Response::Resuming {
                job: 6,
                epoch: 1,
                oldest: 4,
            },
            Response::Error {
                detail: "bad frame".to_string(),
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn submit_without_idem_decodes_with_key_zero() {
        // Journal accept records written before idempotency keys existed
        // have no "idem" field; they must keep replaying.
        let legacy = format!(
            "{{\"op\": \"submit\", \"tenant\": \"t\", {}}}",
            spec().encode_fields()
        );
        let Request::Submit { idem, .. } = Request::decode(&legacy).unwrap() else {
            panic!("submit expected");
        };
        assert_eq!(idem, 0);
    }

    #[test]
    fn malformed_messages_are_typed_errors() {
        for bad in [
            "",
            "{}",
            "{\"op\": \"warp\"}",
            "{\"op\": \"submit\"}",
            "{\"op\": \"submit\", \"tenant\": \"t\", \"kind\": \"nv_core\", \"trials\": 0, \
             \"seed\": 1, \"threads\": 1, \"deadline_steps\": 0, \"retry_budget\": 0, \
             \"flake_ppm\": 0}",
            "{\"re\": \"nothing\"}",
            "{\"op\": \"ping\"}",
            "{\"op\": \"cancel\"}",
            "{\"op\": \"resume_stream\", \"job\": 1}",
            "{\"re\": \"pong\"}",
            "{\"re\": \"cancelled\", \"job\": 1}",
            "{\"re\": \"resuming\", \"job\": 1, \"epoch\": 0}",
        ] {
            let req = Request::decode(bad);
            let resp = Response::decode(bad);
            assert!(
                matches!(req, Err(WireError::BadMessage { .. }))
                    && matches!(resp, Err(WireError::BadMessage { .. })),
                "{bad:?} must decode to BadMessage, got {req:?} / {resp:?}"
            );
        }
    }
}
