//! A deterministic chaos proxy for the campaign wire protocol.
//!
//! [`ChaosProxy`] sits between a client and a server as a plain TCP
//! relay and injects network faults on a schedule derived entirely from
//! one `u64` seed: connection resets, mid-frame cuts, byte corruption,
//! delivery stalls, pathological partial writes, and duplicate frame
//! delivery. The same seed against the same traffic injects the same
//! faults — a chaos run that breaks something is *replayable*, which is
//! the difference between a flaky test and a regression test.
//!
//! Determinism comes from [`nv_rand::Rng::stream`]: each accepted
//! connection is numbered by an atomic counter, and each pump direction
//! draws its fault schedule from `Rng::stream(seed, conn * 2 + dir)` —
//! the fault sequence for a given connection index and direction is a
//! pure function of the seed, independent of thread interleaving.
//!
//! The pumps are frame-aware: they cut *inside* frames (exercising the
//! receiver's truncation handling), corrupt bytes *within* checksummed
//! regions (exercising `ChecksumMismatch`), and duplicate whole frames
//! (exercising client-side sequence/index deduplication) — faults a
//! byte-blind relay could only approximate. A connection that stops
//! looking like the protocol (bad magic, oversized length) degrades to
//! a transparent byte relay so the proxy never invents traffic.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nv_rand::Rng;

use crate::wire::{MAGIC, MAX_PAYLOAD};

/// How long a pump waits per blocked read before re-checking shutdown.
const POLL: Duration = Duration::from_millis(50);

/// Fault probabilities, all per-frame (except `reset_on_accept`,
/// per-connection-direction). All must lie in `[0, 1]`.
#[derive(Clone, Copy, Debug)]
pub struct ChaosPlan {
    /// Master seed; the entire fault schedule derives from it.
    pub seed: u64,
    /// Chance a freshly accepted connection is reset before any byte.
    pub reset_on_accept: f64,
    /// Chance a frame is cut partway through and the connection reset —
    /// the receiver sees a truncated frame, then a hangup.
    pub cut_mid_frame: f64,
    /// Chance one byte of a frame is flipped — the receiver sees a
    /// checksum mismatch (or bad magic) and must treat the peer as
    /// hostile.
    pub corrupt_byte: f64,
    /// Chance a frame's delivery stalls for [`ChaosPlan::stall_ms`].
    pub stall: f64,
    /// Stall length in milliseconds.
    pub stall_ms: u64,
    /// Chance a frame is delivered in 1–7 byte slices with pauses in
    /// between — the slow-loris shape.
    pub partial_write: f64,
    /// Chance a frame is delivered twice — the receiver must
    /// deduplicate.
    pub duplicate: f64,
}

impl ChaosPlan {
    /// A transparent relay: every fault probability zero. The rng is
    /// still drawn in the same order, so quiet and faulty runs share a
    /// schedule shape.
    pub fn quiet(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            reset_on_accept: 0.0,
            cut_mid_frame: 0.0,
            corrupt_byte: 0.0,
            stall: 0.0,
            stall_ms: 0,
            partial_write: 0.0,
            duplicate: 0.0,
        }
    }

    /// Base fault rates scaled by `intensity` (clamped to `[0, 1]`);
    /// intensity 0 is [`ChaosPlan::quiet`], intensity 1 is a genuinely
    /// bad day on the network.
    pub fn at_intensity(seed: u64, intensity: f64) -> ChaosPlan {
        let level = intensity.clamp(0.0, 1.0);
        ChaosPlan {
            seed,
            reset_on_accept: 0.05 * level,
            cut_mid_frame: 0.06 * level,
            corrupt_byte: 0.04 * level,
            stall: 0.10 * level,
            stall_ms: 15,
            partial_write: 0.25 * level,
            duplicate: 0.05 * level,
        }
    }
}

/// Counters of injected faults, one per fault kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultCounts {
    /// Connections accepted (and relayed) by the proxy.
    pub connections: u64,
    /// Connections reset before any byte moved.
    pub resets: u64,
    /// Frames cut partway through.
    pub cuts: u64,
    /// Frames with a flipped byte.
    pub corruptions: u64,
    /// Frames whose delivery stalled.
    pub stalls: u64,
    /// Frames delivered in pathological slices.
    pub partial_writes: u64,
    /// Frames delivered twice.
    pub duplicates: u64,
}

#[derive(Default)]
struct FaultTally {
    connections: AtomicU64,
    resets: AtomicU64,
    cuts: AtomicU64,
    corruptions: AtomicU64,
    stalls: AtomicU64,
    partial_writes: AtomicU64,
    duplicates: AtomicU64,
}

impl FaultTally {
    fn snapshot(&self) -> FaultCounts {
        FaultCounts {
            connections: self.connections.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            cuts: self.cuts.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            partial_writes: self.partial_writes.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
        }
    }
}

/// A running chaos proxy; see the module docs.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    shutdown: Arc<AtomicBool>,
    tally: Arc<FaultTally>,
    acceptor: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Starts a proxy on an OS-assigned loopback port relaying to
    /// `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// I/O failure binding the listener.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let tally = Arc::new(FaultTally::default());
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let upstream = Arc::new(Mutex::new(upstream));

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let tally = Arc::clone(&tally);
            let pumps = Arc::clone(&pumps);
            let upstream = Arc::clone(&upstream);
            std::thread::spawn(move || {
                let mut conn_index: u64 = 0;
                loop {
                    let accepted = listener.accept();
                    if shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    let Ok((client, _)) = accepted else {
                        continue;
                    };
                    let target = *upstream.lock().expect("upstream addr poisoned");
                    let Ok(server) = TcpStream::connect(target) else {
                        // Upstream gone (e.g. mid-kill in a crash drill):
                        // drop the client; it will back off and retry.
                        continue;
                    };
                    tally.connections.fetch_add(1, Ordering::Relaxed);
                    let conn = conn_index;
                    conn_index += 1;
                    for (dir, from, to) in [
                        (0u64, client.try_clone(), server.try_clone()),
                        (1u64, Ok(server), Ok(client)),
                    ] {
                        let (Ok(from), Ok(to)) = (from, to) else {
                            continue;
                        };
                        let rng = Rng::stream(plan.seed, conn * 2 + dir);
                        let shutdown = Arc::clone(&shutdown);
                        let tally = Arc::clone(&tally);
                        let handle = std::thread::spawn(move || {
                            pump(from, to, rng, plan, &tally, &shutdown);
                        });
                        pumps.lock().expect("pump registry poisoned").push(handle);
                    }
                }
            })
        };

        Ok(ChaosProxy {
            local_addr,
            upstream,
            shutdown,
            tally,
            acceptor: Some(acceptor),
            pumps,
        })
    }

    /// The proxy's listen address; point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Repoints new connections at a different upstream. Existing relays
    /// are untouched; crash drills use this after restarting a server on
    /// a fresh OS-assigned port while clients keep dialing the proxy.
    pub fn retarget(&self, addr: SocketAddr) {
        *self.upstream.lock().expect("upstream addr poisoned") = addr;
    }

    /// A snapshot of every fault injected so far.
    pub fn faults(&self) -> FaultCounts {
        self.tally.snapshot()
    }

    /// Stops accepting, tears down every relay, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut pumps = self.pumps.lock().expect("pump registry poisoned");
            pumps.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Reads exactly `buf.len()` bytes, polling so shutdown is honoured.
/// Returns `false` on EOF, error, or shutdown.
fn read_full(from: &mut TcpStream, buf: &mut [u8], shutdown: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match from.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Severs both halves of a relay; the partner pump sees EOF/error.
fn sever(from: &TcpStream, to: &TcpStream) {
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Relays `from` → `to` byte-blind until either side dies. Used when
/// traffic stops parsing as frames.
fn raw_relay(from: &mut TcpStream, to: &mut TcpStream, shutdown: &AtomicBool) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// One relay direction: reads whole frames and forwards them through
/// the fault schedule. Draw order is fixed (reset, then per frame: cut,
/// corrupt, stall, partial, duplicate) so a schedule is a pure function
/// of the rng stream, whatever the probabilities are.
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    mut rng: Rng,
    plan: ChaosPlan,
    tally: &FaultTally,
    shutdown: &AtomicBool,
) {
    let _ = from.set_read_timeout(Some(POLL));
    let _ = from.set_nodelay(true);
    let _ = to.set_nodelay(true);

    if rng.gen_bool(plan.reset_on_accept) {
        tally.resets.fetch_add(1, Ordering::Relaxed);
        sever(&from, &to);
        return;
    }

    loop {
        // Frame header: 4 magic + 4 length + 8 checksum.
        let mut header = [0u8; 16];
        if !read_full(&mut from, &mut header, shutdown) {
            sever(&from, &to);
            return;
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        if header[..4] != MAGIC || len > MAX_PAYLOAD {
            // Not our protocol (or deliberately hostile traffic from a
            // fuzzer): stop interpreting, keep relaying.
            if to.write_all(&header).is_err() {
                sever(&from, &to);
                return;
            }
            raw_relay(&mut from, &mut to, shutdown);
            sever(&from, &to);
            return;
        }
        let mut frame = vec![0u8; 16 + len];
        frame[..16].copy_from_slice(&header);
        if !read_full(&mut from, &mut frame[16..], shutdown) {
            sever(&from, &to);
            return;
        }

        if rng.gen_bool(plan.cut_mid_frame) {
            tally.cuts.fetch_add(1, Ordering::Relaxed);
            let cut_at = 1 + (rng.next_u64() as usize) % frame.len().max(2).saturating_sub(1);
            let _ = to.write_all(&frame[..cut_at]);
            sever(&from, &to);
            return;
        }
        if rng.gen_bool(plan.corrupt_byte) {
            tally.corruptions.fetch_add(1, Ordering::Relaxed);
            let at = (rng.next_u64() as usize) % frame.len();
            frame[at] ^= 1 << (rng.next_u64() % 8);
        }
        if rng.gen_bool(plan.stall) {
            tally.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(plan.stall_ms));
        }
        let delivered = if rng.gen_bool(plan.partial_write) {
            tally.partial_writes.fetch_add(1, Ordering::Relaxed);
            let mut rest: &[u8] = &frame;
            let mut ok = true;
            while !rest.is_empty() {
                let slice = (1 + (rng.next_u64() as usize) % 7).min(rest.len());
                if to.write_all(&rest[..slice]).is_err() {
                    ok = false;
                    break;
                }
                let _ = to.flush();
                rest = &rest[slice..];
                std::thread::sleep(Duration::from_micros(200));
            }
            ok
        } else {
            to.write_all(&frame).is_ok()
        };
        if !delivered {
            sever(&from, &to);
            return;
        }
        if rng.gen_bool(plan.duplicate) {
            tally.duplicates.fetch_add(1, Ordering::Relaxed);
            if to.write_all(&frame).is_err() {
                sever(&from, &to);
                return;
            }
        }
    }
}
