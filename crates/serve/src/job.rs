//! Extraction jobs: what a tenant submits and how a worker runs it.
//!
//! A [`JobSpec`] names one of two workloads on the real attack stack —
//! NV-Core overlap campaigns (many small trials) or NV-S full-trace
//! extractions (few large trials) — plus the campaign knobs: trial
//! count, master seed, worker threads, watchdog deadline, retry budget
//! and an optional deterministic flake rate for exercising the healing
//! path.
//!
//! [`run_job`] executes the spec through the `nightvision` campaign
//! engine's checkpointed resume path, so every completed trial is
//! durable the moment it finishes. Trials that fail a pass are retried
//! with **exponential back-off**: pass *p* re-runs the stragglers under
//! `FailurePolicy::Retry` with a budget of `2^p - 1` (capped at the
//! spec's budget). Because attempt `k` of trial `i` draws an rng stream
//! that depends only on `(master_seed, i, k)`, a trial always completes
//! with the value of its *first succeeding attempt*, no matter how the
//! passes were sliced by crashes — which is exactly what makes
//! kill-and-restart byte-identical.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use nightvision::campaign::{Campaign, Trial};
use nightvision::checkpoint::fnv1a64;
use nightvision::{
    AttackError, CampaignCheckpoint, CheckpointError, FailurePolicy, NvCore, NvSupervisor, PwSpec,
    Resilience, SupervisorConfig, TrialOutcome,
};
use nv_isa::{Assembler, VirtAddr};
use nv_obs::Metrics;
use nv_os::Enclave;
use nv_uarch::{Core, Machine, UarchConfig};
use nv_victims::{GcdVictim, VictimConfig};

use crate::proto::{JobReport, TrialUpdate};

/// Base of the monitored region (the alias-friendly neighbourhood the
/// bench suite uses).
const MON: u64 = 0x40_0900;

/// Windows in the NV-Core probed chain.
const WINDOWS: usize = 2;

/// Which attack workload a job runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobKind {
    /// Many small NV-Core overlap measurements (§4.1 primitive).
    NvCore,
    /// Few large NV-S full PC-trace extractions (§6.3) of a GCD enclave.
    NvS,
}

impl JobKind {
    /// The wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            JobKind::NvCore => "nv_core",
            JobKind::NvS => "nv_s",
        }
    }
}

/// Everything the server needs to run a job deterministically.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobSpec {
    /// The workload.
    pub kind: JobKind,
    /// Trials in the campaign.
    pub trials: usize,
    /// Master seed; every trial stream derives from it.
    pub master_seed: u64,
    /// Campaign worker threads (0 = size for the host).
    pub threads: usize,
    /// Per-trial watchdog budget in retirement steps (0 = none).
    pub deadline_steps: u64,
    /// Total extra attempts a trial may take across all back-off passes.
    pub retry_budget: usize,
    /// Injected per-attempt flake rate, in failures per million, drawn
    /// from the attempt's own rng stream — deterministic in
    /// `(master_seed, trial, attempt)`, so healing is reproducible.
    pub flake_ppm: u32,
}

impl JobSpec {
    /// A small clean NV-Core job (the load-test workhorse).
    pub fn nv_core(trials: usize, master_seed: u64) -> JobSpec {
        JobSpec {
            kind: JobKind::NvCore,
            trials,
            master_seed,
            threads: 1,
            deadline_steps: 20_000,
            retry_budget: 0,
            flake_ppm: 0,
        }
    }

    /// A single-trial NV-S extraction job.
    pub fn nv_s(master_seed: u64) -> JobSpec {
        JobSpec {
            kind: JobKind::NvS,
            trials: 1,
            master_seed,
            threads: 1,
            deadline_steps: 0,
            retry_budget: 0,
            flake_ppm: 0,
        }
    }

    /// The spec's config fingerprint, mixed into the checkpoint key so a
    /// resumed job refuses a checkpoint written under different knobs.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(format!("nv-serve job v1 {}", self.encode_fields()).as_bytes())
    }
}

/// Why a job could not run to a report.
#[derive(Debug)]
pub enum JobError {
    /// The job's checkpoint could not be opened.
    Checkpoint(CheckpointError),
    /// The campaign engine aborted (e.g. checkpoint appends started
    /// failing mid-run — persistence loss is job-fatal).
    Aborted {
        /// The abort message.
        detail: String,
    },
    /// The job's cancellation flag was raised: a wire-level `Cancel` (or
    /// a drain deadline) stopped the job. Completed trials stay in the
    /// checkpoint, so an un-cancelled resubmission picks up where the
    /// cancel landed.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Checkpoint(err) => write!(f, "checkpoint: {err}"),
            JobError::Aborted { detail } => write!(f, "campaign aborted: {detail}"),
            JobError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<CheckpointError> for JobError {
    fn from(err: CheckpointError) -> Self {
        JobError::Checkpoint(err)
    }
}

fn chain() -> Vec<PwSpec> {
    (0..WINDOWS as u64)
        .map(|i| PwSpec::new(VirtAddr::new(MON + 0x40 * i), 16).expect("window"))
        .collect()
}

/// One clean NV-Core overlap measurement driven by the trial's stream;
/// returns a compact signature of the verdicts plus the geometry that
/// produced them, so resume identity is checkable bit-for-bit.
fn nv_core_trial(trial: &mut Trial, cancel: Option<&Arc<AtomicBool>>) -> Result<u64, AttackError> {
    let mut core = Core::new(UarchConfig::default());
    trial.arm(&mut core);
    if let Some(flag) = cancel {
        core.set_cancel_flag(Arc::clone(flag));
    }
    let below = trial.rng.gen_range(0..4u64) * 0x40;
    let nops = 8 + trial.rng.gen_range(0..96u64) as usize;
    let entry = MON - below;
    let mut nv = NvCore::with_resilience(chain(), Resilience::none())?;
    nv.begin(&mut core)?;
    let matched = nv.measure(&mut core, |core| {
        core.reset_frontend();
        let mut asm = Assembler::new(VirtAddr::new(entry));
        for _ in 0..nops {
            asm.nop();
        }
        asm.halt();
        let mut victim = Machine::new(asm.finish().expect("victim fragment assembles"));
        core.run(&mut victim, 4_000);
    })?;
    let mut signature = 0u64;
    for (i, hit) in matched.iter().enumerate() {
        signature |= (*hit as u64) << i;
    }
    Ok(signature << 32 | (below / 0x40) << 16 | nops as u64)
}

/// One NV-S full-trace extraction of a GCD enclave with operands drawn
/// from the trial stream; returns the FNV digest of the extracted PCs.
fn nv_s_trial(trial: &mut Trial, cancel: Option<&Arc<AtomicBool>>) -> Result<u64, AttackError> {
    let a = trial.rng.gen_range(1..=60u64);
    let b = trial.rng.gen_range(1..=60u64);
    let victim = GcdVictim::build(a, b, &VictimConfig::default()).expect("gcd victim assembles");
    let mut enclave = Enclave::new(victim.program().clone());
    let mut core = Core::new(UarchConfig::default());
    trial.arm(&mut core);
    if let Some(flag) = cancel {
        core.set_cancel_flag(Arc::clone(flag));
    }
    let extracted =
        NvSupervisor::new(SupervisorConfig::default()).extract_trace(&mut enclave, &mut core)?;
    let mut bytes = Vec::new();
    for pc in extracted.pcs() {
        bytes.extend_from_slice(&pc.value().to_le_bytes());
    }
    Ok(fnv1a64(&bytes))
}

/// One attempt of one trial per the spec: an injected flake first (drawn
/// from the attempt's own stream), then the real workload.
fn run_attempt(
    spec: &JobSpec,
    trial: &mut Trial,
    cancel: Option<&Arc<AtomicBool>>,
) -> Result<u64, AttackError> {
    if spec.flake_ppm > 0 && trial.rng.gen_range(0..1_000_000u64) < u64::from(spec.flake_ppm) {
        return Err(AttackError::NotCalibrated);
    }
    match spec.kind {
        JobKind::NvCore => nv_core_trial(trial, cancel),
        JobKind::NvS => nv_s_trial(trial, cancel),
    }
}

fn outcome_tag<T>(outcome: &TrialOutcome<T>) -> &'static str {
    match outcome {
        TrialOutcome::Completed(_) => "completed",
        TrialOutcome::Failed(AttackError::Cancelled) => "cancelled",
        TrialOutcome::Failed(_) => "failed",
        TrialOutcome::Panicked { .. } => "panicked",
        TrialOutcome::DeadlineExceeded { .. } => "deadline",
    }
}

fn encode(v: &u64) -> String {
    v.to_string()
}

fn decode(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// The job-identity digest: FNV-1a-64 over the index-ordered outcome
/// vector (kind tag plus value). Byte-identical digests mean
/// byte-identical campaigns — the witness the kill/resume benches check.
fn outcome_digest(outcomes: &[TrialOutcome<u64>]) -> u64 {
    let mut bytes = Vec::with_capacity(outcomes.len() * 16);
    for (index, outcome) in outcomes.iter().enumerate() {
        bytes.extend_from_slice(&(index as u64).to_le_bytes());
        bytes.extend_from_slice(outcome_tag(outcome).as_bytes());
        bytes.extend_from_slice(&outcome.completed().copied().unwrap_or(0).to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Runs `spec` to a [`JobReport`], streaming [`TrialUpdate`]s through
/// `on_update` as trials finish: live completions as they happen,
/// checkpoint-resumed completions after the first pass, terminal
/// failures after the last.
///
/// The checkpoint at `checkpoint_path` makes the job resumable: calling
/// `run_job` again after a kill (same spec, same path) skips completed
/// trials and converges to the identical report.
///
/// `cancel`, when present, is polled at pass boundaries and attached to
/// every trial's core, so a raised flag stops the job both between
/// trials and *inside* one (at the attack layers' cooperative watchdog
/// checks). Streamed updates carry `seq: 0`; the server's stream buffer
/// assigns real sequence numbers at publish time.
///
/// # Errors
///
/// [`JobError::Checkpoint`] if the checkpoint cannot be opened (or was
/// written by a different spec), [`JobError::Aborted`] if the campaign
/// engine aborted, [`JobError::Cancelled`] if the cancellation flag was
/// observed.
pub fn run_job(
    job: u64,
    spec: &JobSpec,
    checkpoint_path: &Path,
    cancel: Option<&Arc<AtomicBool>>,
    on_update: impl Fn(TrialUpdate) + Sync,
) -> Result<JobReport, JobError> {
    let cancelled = || cancel.is_some_and(|flag| flag.load(Ordering::Relaxed));
    let mut base = Campaign::new(spec.trials)
        .master_seed(spec.master_seed)
        .threads(spec.threads.max(1));
    if spec.deadline_steps > 0 {
        base = base.deadline_steps(spec.deadline_steps);
    }
    let key = base.checkpoint_key(spec.fingerprint());

    // Indices already streamed to the client, so pass boundaries and
    // checkpoint-resumed trials never duplicate an update.
    let streamed = Mutex::new(vec![false; spec.trials]);
    let mut metrics = Metrics::default();
    let mut budget = 0usize;
    let mut passes = 0u64;
    let mut resumed_trials = 0u64;

    let outcomes = loop {
        if cancelled() {
            return Err(JobError::Cancelled);
        }
        passes += 1;
        let checkpoint = CampaignCheckpoint::open(checkpoint_path, key)?;
        if passes == 1 {
            resumed_trials = checkpoint.completed_trials() as u64;
        }
        let campaign = base.failure_policy(FailurePolicy::Retry { budget });
        let pass = catch_unwind(AssertUnwindSafe(|| {
            campaign.resume_observed(64, &checkpoint, encode, decode, |mut trial, _rec| {
                let index = trial.index;
                let value = run_attempt(spec, &mut trial, cancel)?;
                streamed.lock().expect("streamed flags poisoned")[index] = true;
                on_update(TrialUpdate {
                    job,
                    seq: 0,
                    index: index as u64,
                    outcome: "completed".to_string(),
                    value,
                    resumed: false,
                });
                Ok(value)
            })
        }));
        let (outcomes, pass_metrics) = match pass {
            Ok(result) => result,
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return Err(JobError::Aborted { detail });
            }
        };
        metrics.merge(&pass_metrics);

        // Stream checkpoint-resumed completions (first pass) — their
        // trial closures never ran, so they were not streamed live.
        {
            let mut flags = streamed.lock().expect("streamed flags poisoned");
            for (index, outcome) in outcomes.iter().enumerate() {
                if let TrialOutcome::Completed(value) = outcome {
                    if !flags[index] {
                        flags[index] = true;
                        on_update(TrialUpdate {
                            job,
                            seq: 0,
                            index: index as u64,
                            outcome: "completed".to_string(),
                            value: *value,
                            resumed: true,
                        });
                    }
                }
            }
        }

        if cancelled() {
            return Err(JobError::Cancelled);
        }
        let incomplete = outcomes.iter().filter(|o| !o.is_completed()).count();
        if incomplete == 0 || budget >= spec.retry_budget {
            break outcomes;
        }
        // Exponential back-off: 0, 1, 3, 7, ... extra attempts per pass.
        budget = budget
            .saturating_mul(2)
            .saturating_add(1)
            .min(spec.retry_budget);
    };

    // Terminal failures, streamed once the back-off passes are spent.
    for (index, outcome) in outcomes.iter().enumerate() {
        if !outcome.is_completed() {
            on_update(TrialUpdate {
                job,
                seq: 0,
                index: index as u64,
                outcome: outcome_tag(outcome).to_string(),
                value: 0,
                resumed: false,
            });
        }
    }

    let completed = outcomes.iter().filter(|o| o.is_completed()).count() as u64;
    Ok(JobReport {
        job,
        trials: spec.trials as u64,
        completed,
        quarantined: spec.trials as u64 - completed,
        resumed_trials,
        passes,
        digest: outcome_digest(&outcomes),
        metrics_json: metrics.to_json(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("nv_serve_job_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn nv_core_job_completes_and_digest_is_thread_invariant() {
        let mut digests = Vec::new();
        for threads in [1, 2] {
            let mut spec = JobSpec::nv_core(6, 0x5eed);
            spec.threads = threads;
            let path = scratch(&format!("core_t{threads}"));
            let report = run_job(1, &spec, &path, None, |_| {}).unwrap();
            assert_eq!(report.completed, 6);
            assert_eq!(report.quarantined, 0);
            assert_eq!(report.passes, 1);
            digests.push(report.digest);
            let _ = std::fs::remove_file(&path);
        }
        assert_eq!(digests[0], digests[1], "digest must not depend on threads");
    }

    #[test]
    fn flaky_job_heals_across_backoff_passes() {
        // A heavy deterministic flake rate: most first attempts fail, the
        // widening retry budget heals them across passes.
        let mut spec = JobSpec::nv_core(8, 0xf1a6);
        spec.flake_ppm = 600_000;
        spec.retry_budget = 15;
        let path = scratch("flaky");
        let report = run_job(2, &spec, &path, None, |_| {}).unwrap();
        assert_eq!(
            report.completed, 8,
            "600k ppm flakes must heal within a budget of 15"
        );
        assert!(report.passes > 1, "healing must have taken extra passes");
        let _ = std::fs::remove_file(&path);

        // The healed digest equals a generous-single-pass digest: a trial
        // always keeps its first succeeding attempt's value.
        let path2 = scratch("flaky_onepass");
        let baseline = run_job(3, &spec, &path2, None, |_| {}).unwrap();
        assert_eq!(report.digest, baseline.digest);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn killed_job_resumes_byte_identical() {
        let spec = JobSpec::nv_core(6, 0xdead);
        let clean_path = scratch("resume_clean");
        let baseline = run_job(4, &spec, &clean_path, None, |_| {}).unwrap();
        let _ = std::fs::remove_file(&clean_path);

        // Simulated kill: run half the trials directly into the job's
        // checkpoint, then hand the file to run_job as a restarted server
        // would.
        let path = scratch("resume_killed");
        {
            let base = Campaign::new(spec.trials)
                .master_seed(spec.master_seed)
                .deadline_steps(spec.deadline_steps);
            let key = base.checkpoint_key(spec.fingerprint());
            let ckpt = CampaignCheckpoint::open(&path, key).unwrap();
            for index in 0..3 {
                let mut trial = Trial {
                    index,
                    rng: nv_rand::Rng::stream(spec.master_seed, index as u64),
                    deadline: Some(spec.deadline_steps),
                };
                let value = nv_core_trial(&mut trial, None).unwrap();
                ckpt.append(index, &encode(&value)).unwrap();
            }
        }
        let mut resumed_updates = 0u64;
        let updates = Mutex::new(Vec::new());
        let report = run_job(4, &spec, &path, None, |u| {
            updates.lock().unwrap().push(u);
        })
        .unwrap();
        for update in updates.lock().unwrap().iter() {
            if update.resumed {
                resumed_updates += 1;
            }
        }
        assert_eq!(report.digest, baseline.digest, "resume must be identical");
        assert_eq!(report.resumed_trials, 3);
        assert_eq!(resumed_updates, 3, "resumed trials must still stream");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pre_raised_cancel_flag_stops_the_job_before_any_trial() {
        let spec = JobSpec::nv_core(6, 0xca);
        let path = scratch("cancel_pre");
        let flag = Arc::new(AtomicBool::new(true));
        let ran = Mutex::new(0u64);
        let result = run_job(6, &spec, &path, Some(&flag), |_| {
            *ran.lock().unwrap() += 1;
        });
        assert!(matches!(result, Err(JobError::Cancelled)));
        assert_eq!(*ran.lock().unwrap(), 0, "no update may stream");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancelled_job_keeps_its_checkpoint_and_resumes_clean() {
        // Cancel after the first streamed trial; the completed prefix must
        // survive in the checkpoint and an un-cancelled rerun converges to
        // the clean digest.
        let spec = JobSpec::nv_core(5, 0xcab);
        let clean_path = scratch("cancel_clean");
        let baseline = run_job(7, &spec, &clean_path, None, |_| {}).unwrap();
        let _ = std::fs::remove_file(&clean_path);

        let path = scratch("cancel_mid");
        let flag = Arc::new(AtomicBool::new(false));
        let raiser = Arc::clone(&flag);
        let result = run_job(7, &spec, &path, Some(&flag), move |_| {
            raiser.store(true, Ordering::Relaxed);
        });
        assert!(matches!(result, Err(JobError::Cancelled)));
        let report = run_job(7, &spec, &path, None, |_| {}).unwrap();
        assert_eq!(report.digest, baseline.digest);
        assert!(
            report.resumed_trials >= 1,
            "the pre-cancel completion must have been checkpointed"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_trial_cancellation_surfaces_as_cancelled_attack_error() {
        // Drive one trial directly with a raised flag: the cooperative
        // watchdog check inside the attack layers must observe it.
        let mut trial = Trial {
            index: 0,
            rng: nv_rand::Rng::stream(0xf1a9, 0),
            deadline: Some(20_000),
        };
        let flag = Arc::new(AtomicBool::new(true));
        let err = nv_core_trial(&mut trial, Some(&flag)).unwrap_err();
        assert!(matches!(err, AttackError::Cancelled), "{err}");
    }

    #[test]
    fn nv_s_job_digest_is_stable() {
        let spec = JobSpec::nv_s(0x6cd);
        let path_a = scratch("nvs_a");
        let path_b = scratch("nvs_b");
        let a = run_job(5, &spec, &path_a, None, |_| {}).unwrap();
        let b = run_job(5, &spec, &path_b, None, |_| {}).unwrap();
        assert_eq!(a.completed, 1);
        assert_eq!(a.digest, b.digest);
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }
}
