//! The campaign server: admission control, a bounded job queue, a
//! supervised worker pool, and journaled crash recovery.
//!
//! Life of a job:
//!
//! 1. a connection thread decodes a `submit` frame and runs **admission**
//!    under the state lock: draining ⇒ typed reject; bounded queue full
//!    ⇒ typed reject; tenant over quota ⇒ typed reject; otherwise the
//!    job id is assigned, the admission is **journaled and flushed**,
//!    and only then does `Accepted` leave the server — a job the client
//!    saw accepted is a job a `kill -9` cannot lose;
//! 2. a worker pops the job and runs it through
//!    [`crate::job::run_job`] — checkpointed trials, watchdog deadlines,
//!    exponential-backoff healing — streaming [`Response::Trial`] frames
//!    back through the submitting connection;
//! 3. the final [`Response::Done`] carries the job's report and digest;
//!    the completion is journaled and the per-job checkpoint deleted.
//!
//! On restart the journal is replayed: accepted-but-unfinished jobs are
//! re-queued (their checkpoints resume them mid-campaign), finished jobs
//! keep answering status queries with their digests. Server lifecycle is
//! observable: admissions, rejections, resumes, completions and torn
//! journals all count in the nv-obs metrics served by `stats`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nv_obs::{ObsEvent, Recorder};

use crate::job::{run_job, JobSpec};
use crate::journal::JobJournal;
use crate::proto::{JobReport, RejectReason, Request, Response, ServerStats};
use crate::wire::{is_protocol_violation, read_frame, write_frame, WireError};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Worker-pool size (0 = size for the host, like
    /// `Campaign::threads(0)`).
    pub workers: usize,
    /// Bounded queue cap: admissions beyond it are rejected typed.
    pub queue_cap: usize,
    /// Max queued-plus-running jobs per tenant.
    pub tenant_quota: usize,
    /// Directory for the journal and per-job checkpoints.
    pub spool: PathBuf,
}

impl ServerConfig {
    /// A loopback server spooling into `spool`.
    pub fn new(spool: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_cap: 64,
            tenant_quota: 64,
            spool: spool.into(),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running,
    Done(JobReport),
    // The detail is surfaced through the Debug impl (operator logs) and
    // the error frame already sent to the submitter.
    Failed(#[allow(dead_code)] String),
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    rejected: u64,
    resumed: u64,
}

struct QueuedJob {
    job: u64,
    tenant: String,
    spec: JobSpec,
    updates: Option<Sender<Response>>,
}

struct State {
    queue: VecDeque<QueuedJob>,
    tenants: HashMap<String, usize>,
    jobs: HashMap<u64, JobState>,
    done_digests: BTreeMap<u64, u64>,
    next_job: u64,
    running: usize,
    draining: bool,
    shutdown: bool,
    peak_depth: usize,
    counters: Counters,
}

struct Inner {
    config: ServerConfig,
    state: Mutex<State>,
    work_ready: Condvar,
    idle: Condvar,
    journal: JobJournal,
    recorder: Mutex<Recorder>,
}

impl Inner {
    fn observe(&self, event: ObsEvent) {
        self.recorder
            .lock()
            .expect("server recorder poisoned")
            .event(0, event);
    }

    fn checkpoint_path(&self, job: u64) -> PathBuf {
        self.config.spool.join(format!("job_{job}.ckpt"))
    }

    /// Admission control. On success the job is journaled and queued and
    /// the caller gets the update stream's receiving end.
    fn admit(
        &self,
        tenant: &str,
        spec: JobSpec,
    ) -> Result<Result<(u64, Receiver<Response>), RejectReason>, std::io::Error> {
        let mut state = self.state.lock().expect("server state poisoned");
        if state.draining || state.shutdown {
            state.counters.rejected += 1;
            drop(state);
            self.observe(ObsEvent::JobRejected { reason: "draining" });
            return Ok(Err(RejectReason::Draining));
        }
        if state.queue.len() >= self.config.queue_cap {
            let depth = state.queue.len() as u64;
            state.counters.rejected += 1;
            drop(state);
            self.observe(ObsEvent::JobRejected {
                reason: "queue_full",
            });
            return Ok(Err(RejectReason::QueueFull {
                depth,
                cap: self.config.queue_cap as u64,
            }));
        }
        let active = state.tenants.get(tenant).copied().unwrap_or(0);
        if active >= self.config.tenant_quota {
            state.counters.rejected += 1;
            drop(state);
            self.observe(ObsEvent::JobRejected {
                reason: "tenant_quota",
            });
            return Ok(Err(RejectReason::TenantQuota {
                active: active as u64,
                quota: self.config.tenant_quota as u64,
            }));
        }

        let job = state.next_job;
        // Durable before visible: flush the admission record while still
        // holding the lock, so ids are journaled in order and a crash
        // between "accepted" and "queued" cannot happen.
        self.journal.record_accept(job, tenant, &spec)?;
        state.next_job += 1;
        *state.tenants.entry(tenant.to_string()).or_insert(0) += 1;
        let (tx, rx) = mpsc::channel();
        state.queue.push_back(QueuedJob {
            job,
            tenant: tenant.to_string(),
            spec,
            updates: Some(tx),
        });
        state.peak_depth = state.peak_depth.max(state.queue.len());
        state.jobs.insert(job, JobState::Queued);
        state.counters.submitted += 1;
        drop(state);
        self.observe(ObsEvent::JobAdmitted { job });
        self.work_ready.notify_one();
        Ok(Ok((job, rx)))
    }

    fn stats(&self) -> ServerStats {
        let state = self.state.lock().expect("server state poisoned");
        let metrics_json = {
            let mut recorder = self.recorder.lock().expect("server recorder poisoned");
            recorder.finish();
            recorder.metrics().to_json()
        };
        ServerStats {
            submitted: state.counters.submitted,
            completed: state.counters.completed,
            rejected: state.counters.rejected,
            resumed: state.counters.resumed,
            queue_depth: state.queue.len() as u64,
            peak_queue_depth: state.peak_depth as u64,
            queue_cap: self.config.queue_cap as u64,
            draining: state.draining,
            metrics_json,
        }
    }

    fn status(&self, job: u64) -> Response {
        let state = self.state.lock().expect("server state poisoned");
        let (state_tag, digest) = match state.jobs.get(&job) {
            Some(JobState::Queued) => ("queued", 0),
            Some(JobState::Running) => ("running", 0),
            Some(JobState::Done(report)) => ("done", report.digest),
            Some(JobState::Failed(_)) => ("failed", 0),
            None => match state.done_digests.get(&job) {
                Some(digest) => ("done", *digest),
                None => ("unknown", 0),
            },
        };
        Response::Status {
            job,
            state: state_tag.to_string(),
            digest,
        }
    }

    fn worker_loop(&self) {
        loop {
            let queued = {
                let mut state = self.state.lock().expect("server state poisoned");
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(job) = state.queue.pop_front() {
                        state.running += 1;
                        state.jobs.insert(job.job, JobState::Running);
                        break job;
                    }
                    state = self.work_ready.wait(state).expect("server state poisoned");
                }
            };

            let QueuedJob {
                job,
                tenant,
                spec,
                updates,
            } = queued;
            let path = self.checkpoint_path(job);
            let updates = updates.map(Mutex::new);
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_job(job, &spec, &path, |update| {
                    if let Some(tx) = &updates {
                        let _ = tx
                            .lock()
                            .expect("update sender poisoned")
                            .send(Response::Trial(update));
                    }
                })
            }));

            let final_response = match result {
                Ok(Ok(report)) => {
                    // Journal the completion before deleting the
                    // checkpoint: a crash between the two re-runs nothing
                    // (the done record wins); the reverse order would
                    // re-run the whole job from zero.
                    let journaled = self.journal.record_done(job, report.digest);
                    if journaled.is_ok() {
                        let _ = std::fs::remove_file(&path);
                    }
                    let mut state = self.state.lock().expect("server state poisoned");
                    state.done_digests.insert(job, report.digest);
                    state.jobs.insert(job, JobState::Done(report.clone()));
                    state.counters.completed += 1;
                    drop(state);
                    self.observe(ObsEvent::JobCompleted { job });
                    Response::Done(report)
                }
                Ok(Err(err)) => {
                    let detail = format!("job {job} failed: {err}");
                    let mut state = self.state.lock().expect("server state poisoned");
                    state.jobs.insert(job, JobState::Failed(detail.clone()));
                    drop(state);
                    Response::Error { detail }
                }
                Err(_) => {
                    let detail = format!("job {job} panicked outside the campaign engine");
                    let mut state = self.state.lock().expect("server state poisoned");
                    state.jobs.insert(job, JobState::Failed(detail.clone()));
                    drop(state);
                    Response::Error { detail }
                }
            };
            if let Some(tx) = &updates {
                let _ = tx
                    .lock()
                    .expect("update sender poisoned")
                    .send(final_response);
            }

            let mut state = self.state.lock().expect("server state poisoned");
            state.running -= 1;
            if let Some(active) = state.tenants.get_mut(&tenant) {
                *active = active.saturating_sub(1);
                if *active == 0 {
                    state.tenants.remove(&tenant);
                }
            }
            let quiescent = state.running == 0 && state.queue.is_empty();
            drop(state);
            if quiescent {
                self.idle.notify_all();
            }
        }
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(payload) => payload,
                Err(WireError::Closed) => return,
                Err(WireError::Io(kind))
                    if kind == std::io::ErrorKind::WouldBlock
                        || kind == std::io::ErrorKind::TimedOut =>
                {
                    if self.state.lock().expect("server state poisoned").shutdown {
                        return;
                    }
                    continue;
                }
                Err(err) => {
                    // Hostile or damaged peer: answer typed, then hang up.
                    if is_protocol_violation(&err) {
                        let _ = write_frame(
                            &mut stream,
                            &Response::Error {
                                detail: err.to_string(),
                            }
                            .encode(),
                        );
                    }
                    return;
                }
            };
            let request = match Request::decode(&payload) {
                Ok(request) => request,
                Err(err) => {
                    let _ = write_frame(
                        &mut stream,
                        &Response::Error {
                            detail: err.to_string(),
                        }
                        .encode(),
                    );
                    return;
                }
            };
            let keep_going = match request {
                Request::Submit { tenant, spec } => self.handle_submit(&mut stream, &tenant, spec),
                Request::Status { job } => {
                    write_frame(&mut stream, &self.status(job).encode()).is_ok()
                }
                Request::Stats => {
                    write_frame(&mut stream, &Response::Stats(self.stats()).encode()).is_ok()
                }
                Request::Drain => {
                    let pending = {
                        let mut state = self.state.lock().expect("server state poisoned");
                        state.draining = true;
                        (state.queue.len() + state.running) as u64
                    };
                    write_frame(&mut stream, &Response::Draining { pending }.encode()).is_ok()
                }
            };
            if !keep_going {
                return;
            }
        }
    }

    fn handle_submit(&self, stream: &mut TcpStream, tenant: &str, spec: JobSpec) -> bool {
        match self.admit(tenant, spec) {
            Ok(Ok((job, rx))) => {
                if write_frame(stream, &Response::Accepted { job }.encode()).is_err() {
                    return false;
                }
                // Forward the update stream until the job's last word.
                loop {
                    match rx.recv() {
                        Ok(response) => {
                            let last =
                                matches!(response, Response::Done(_) | Response::Error { .. });
                            if write_frame(stream, &response.encode()).is_err() {
                                // Client gone; the job keeps running and
                                // stays queryable via `status`.
                                return false;
                            }
                            if last {
                                return true;
                            }
                        }
                        Err(_) => {
                            // Workers are gone (shutdown with the job
                            // still queued); the journal will resume it.
                            let _ = write_frame(
                                stream,
                                &Response::Error {
                                    detail: format!(
                                        "job {job} interrupted by shutdown; it will resume on restart"
                                    ),
                                }
                                .encode(),
                            );
                            return false;
                        }
                    }
                }
            }
            Ok(Err(reason)) => write_frame(stream, &Response::Rejected { reason }.encode()).is_ok(),
            Err(err) => {
                let _ = write_frame(
                    stream,
                    &Response::Error {
                        detail: format!("admission journaling failed: {err}"),
                    }
                    .encode(),
                );
                false
            }
        }
    }
}

/// A running campaign server. Dropping it does *not* stop the threads;
/// call [`Server::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, replays the journal (re-queuing in-flight jobs), and
    /// spawns the acceptor and worker pool.
    ///
    /// # Errors
    ///
    /// I/O failure binding the listener or opening the spool/journal.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&config.spool)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (journal, replay) = JobJournal::open(config.spool.join("jobs.jsonl"))?;

        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };

        let mut state = State {
            queue: VecDeque::new(),
            tenants: HashMap::new(),
            jobs: HashMap::new(),
            done_digests: replay.done.clone(),
            next_job: replay.next_job,
            running: 0,
            draining: false,
            shutdown: false,
            peak_depth: 0,
            counters: Counters::default(),
        };
        // Re-queue every in-flight job from the journal. Resumed jobs
        // bypass the admission cap: they hold an admission from a
        // previous life, and refusing them would strand their journal
        // entries forever.
        for pending in &replay.pending {
            *state.tenants.entry(pending.tenant.clone()).or_insert(0) += 1;
            state.jobs.insert(pending.job, JobState::Queued);
            state.queue.push_back(QueuedJob {
                job: pending.job,
                tenant: pending.tenant.clone(),
                spec: pending.spec,
                updates: None,
            });
            state.counters.resumed += 1;
        }
        state.peak_depth = state.queue.len();

        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            journal,
            recorder: Mutex::new(Recorder::new(1024)),
        });
        if replay.dropped_records > 0 {
            inner.observe(ObsEvent::CheckpointTorn {
                records: replay.dropped_records as u64,
                bytes: replay.dropped_bytes,
            });
        }
        for pending in &replay.pending {
            inner.observe(ObsEvent::JobResumed { job: pending.job });
        }
        inner.work_ready.notify_all();

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();

        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let inner = Arc::clone(&inner);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if inner.state.lock().expect("server state poisoned").shutdown {
                            return;
                        }
                        let conn_inner = Arc::clone(&inner);
                        let handle =
                            std::thread::spawn(move || conn_inner.handle_connection(stream));
                        connections
                            .lock()
                            .expect("connection registry poisoned")
                            .push(handle);
                    }
                    Err(_) => {
                        if inner.state.lock().expect("server state poisoned").shutdown {
                            return;
                        }
                    }
                }
            })
        };

        Ok(Server {
            inner,
            local_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Jobs currently queued or running.
    pub fn pending_jobs(&self) -> usize {
        let state = self.inner.state.lock().expect("server state poisoned");
        state.queue.len() + state.running
    }

    /// Blocks until the queue is empty and no job is running, or the
    /// timeout elapses. Returns whether quiescence was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("server state poisoned");
        while !state.queue.is_empty() || state.running > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .inner
                .idle
                .wait_timeout(state, deadline - now)
                .expect("server state poisoned");
            state = next;
        }
        true
    }

    /// Stops accepting, abandons queued jobs to the journal (a restart
    /// resumes them), finishes jobs already running, and joins every
    /// thread.
    pub fn shutdown(mut self) {
        {
            let mut state = self.inner.state.lock().expect("server state poisoned");
            state.shutdown = true;
            // Dropping queued jobs drops their update senders, which
            // unblocks their submit connections with a typed error; the
            // journal still holds their admissions for the next start.
            state.queue.clear();
        }
        self.inner.work_ready.notify_all();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let connections = {
            let mut registry = self
                .connections
                .lock()
                .expect("connection registry poisoned");
            registry.drain(..).collect::<Vec<_>>()
        };
        for connection in connections {
            let _ = connection.join();
        }
    }
}
