//! The campaign server: admission control, a bounded job queue, a
//! supervised worker pool, journaled crash recovery, and a
//! chaos-hardened connection layer.
//!
//! Life of a job:
//!
//! 1. a connection thread decodes a `submit` frame and runs **admission**
//!    under the state lock: draining ⇒ typed reject; bounded queue full
//!    ⇒ typed reject; tenant over quota ⇒ typed reject; otherwise the
//!    job id is assigned, the admission is **journaled and flushed**,
//!    and only then does `Accepted` leave the server — a job the client
//!    saw accepted is a job a `kill -9` cannot lose. A non-zero
//!    idempotency key makes resubmission safe: the same `(tenant, key)`
//!    returns the original job instead of admitting a duplicate;
//! 2. a worker pops the job and runs it through
//!    [`crate::job::run_job`] — checkpointed trials, watchdog deadlines,
//!    exponential-backoff healing — publishing every [`Response::Trial`]
//!    into the job's **outcome ring**, a bounded per-job buffer of
//!    sequence-numbered updates. Connections (the submitter, and any
//!    later `resume_stream`) subscribe to the ring: a client that lost
//!    its connection reconnects and replays only what it has not seen;
//! 3. the final [`Response::Done`] (or typed `Cancelled`/`Error`) is the
//!    stream's cached terminal; the completion is journaled and the
//!    per-job checkpoint deleted.
//!
//! The connection layer assumes a hostile network: per-connection read
//! *and* write deadlines (a non-reading peer is dropped and counted, not
//! allowed to wedge a writer), an idle deadline that reaps half-open
//! connections (heartbeat pings keep a quiet client alive), wire-level
//! job cancellation that reaches *inside* a running trial through the
//! core's cooperative watchdog check, and a drain deadline that converts
//! stragglers into typed cancellations instead of hanging shutdown.
//!
//! On restart the journal is replayed: accepted-but-unfinished jobs are
//! re-queued (their checkpoints resume them mid-campaign), finished jobs
//! keep answering status queries with their digests, cancelled jobs stay
//! cancelled, and idempotency keys keep deduplicating. Server lifecycle
//! is observable: admissions, rejections, resumes, completions,
//! cancellations, stream re-attachments, stalled writers and reaped
//! connections all count in the nv-obs metrics served by `stats`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nv_obs::{ObsEvent, Recorder};

use crate::job::{run_job, JobError, JobSpec};
use crate::journal::JobJournal;
use crate::proto::{JobReport, RejectReason, Request, Response, ServerStats, TrialUpdate};
use crate::wire::{is_protocol_violation, read_frame, write_frame, WireError};

/// How long a blocked reader waits per poll before re-checking shutdown
/// and the idle deadline.
const READ_POLL: Duration = Duration::from_millis(200);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    /// Worker-pool size (0 = size for the host, like
    /// `Campaign::threads(0)`).
    pub workers: usize,
    /// Bounded queue cap: admissions beyond it are rejected typed.
    pub queue_cap: usize,
    /// Max queued-plus-running jobs per tenant.
    pub tenant_quota: usize,
    /// Directory for the journal and per-job checkpoints.
    pub spool: PathBuf,
    /// Per-job outcome-ring capacity: the oldest buffered updates age
    /// out beyond it, bounding memory against huge jobs. A resuming
    /// client whose cursor predates the ring sees the gap in
    /// [`Response::Resuming::oldest`].
    pub ring_cap: usize,
    /// Per-connection write deadline: a peer that stops reading long
    /// enough to stall a response write this long is dropped (and
    /// counted), never allowed to wedge a worker or connection thread.
    pub write_timeout: Duration,
    /// Per-connection idle deadline: a connection that sends no frame
    /// (not even a ping) for this long between requests is reaped.
    pub idle_timeout: Duration,
}

impl ServerConfig {
    /// A loopback server spooling into `spool`.
    pub fn new(spool: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_cap: 64,
            tenant_quota: 64,
            spool: spool.into(),
            ring_cap: 4096,
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running,
    Done(JobReport),
    // The detail is surfaced through the Debug impl (operator logs) and
    // the error frame already sent to the submitter.
    Failed(#[allow(dead_code)] String),
    Cancelled,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    rejected: u64,
    resumed: u64,
}

struct QueuedJob {
    job: u64,
    tenant: String,
    spec: JobSpec,
}

/// One job's buffered outcome stream: sequence-numbered updates in a
/// bounded ring, live subscribers, and the cached terminal response.
struct JobStream {
    ring: VecDeque<TrialUpdate>,
    next_seq: u64,
    terminal: Option<Response>,
    subscribers: Vec<Sender<Response>>,
}

impl Default for JobStream {
    fn default() -> JobStream {
        JobStream {
            ring: VecDeque::new(),
            next_seq: 1,
            terminal: None,
            subscribers: Vec::new(),
        }
    }
}

/// What a connection got when it attached to a job's stream.
struct Attached {
    /// Buffered updates past the client's cursor, in sequence order.
    replay: Vec<TrialUpdate>,
    /// The cached terminal, if the job already ended.
    terminal: Option<Response>,
    /// Live subscription; present exactly when there is no terminal yet.
    live: Option<Receiver<Response>>,
    /// Oldest sequence number still buffered (0 = empty ring).
    oldest: u64,
}

struct State {
    queue: VecDeque<QueuedJob>,
    tenants: HashMap<String, usize>,
    jobs: HashMap<u64, JobState>,
    done_digests: BTreeMap<u64, u64>,
    idem_index: HashMap<(String, u64), u64>,
    cancel_flags: HashMap<u64, Arc<AtomicBool>>,
    next_job: u64,
    running: usize,
    draining: bool,
    shutdown: bool,
    peak_depth: usize,
    counters: Counters,
}

struct Inner {
    config: ServerConfig,
    state: Mutex<State>,
    // Lock order: `state` before `streams`; never take `state` while
    // holding `streams`.
    streams: Mutex<HashMap<u64, JobStream>>,
    work_ready: Condvar,
    idle: Condvar,
    journal: JobJournal,
    recorder: Mutex<Recorder>,
    /// Boot epoch: journal boots including this life. Sequence numbers
    /// are per-epoch; clients compare epochs across reconnects.
    epoch: u64,
}

impl Inner {
    fn observe(&self, event: ObsEvent) {
        self.recorder
            .lock()
            .expect("server recorder poisoned")
            .event(0, event);
    }

    fn checkpoint_path(&self, job: u64) -> PathBuf {
        self.config.spool.join(format!("job_{job}.ckpt"))
    }

    /// Writes one response, converting a blown write deadline into a
    /// counted, typed drop instead of a wedged thread.
    fn send_response(&self, stream: &mut TcpStream, response: &Response) -> bool {
        match write_frame(stream, &response.encode()) {
            Ok(()) => true,
            Err(err) => {
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    self.observe(ObsEvent::ConnWriteStalled {
                        timeout_ms: self.config.write_timeout.as_millis() as u64,
                    });
                }
                false
            }
        }
    }

    /// Appends one update to the job's ring (assigning its sequence
    /// number) and fans it out to live subscribers.
    fn publish_update(&self, job: u64, mut update: TrialUpdate) {
        let mut streams = self.streams.lock().expect("stream registry poisoned");
        let stream = streams.entry(job).or_default();
        update.seq = stream.next_seq;
        stream.next_seq += 1;
        stream.ring.push_back(update.clone());
        while stream.ring.len() > self.config.ring_cap {
            stream.ring.pop_front();
        }
        stream
            .subscribers
            .retain(|tx| tx.send(Response::Trial(update.clone())).is_ok());
    }

    /// Caches the job's terminal response and delivers it to every live
    /// subscriber, ending their streams.
    fn publish_terminal(&self, job: u64, response: Response) {
        let mut streams = self.streams.lock().expect("stream registry poisoned");
        let stream = streams.entry(job).or_default();
        stream.terminal = Some(response.clone());
        for tx in stream.subscribers.drain(..) {
            let _ = tx.send(response.clone());
        }
    }

    /// Attaches to a job's stream at `cursor`: buffered updates past it,
    /// the terminal if the job ended, a live subscription otherwise.
    /// `None` when no stream exists for the job.
    fn attach(&self, job: u64, cursor: u64) -> Option<Attached> {
        let mut streams = self.streams.lock().expect("stream registry poisoned");
        let stream = streams.get_mut(&job)?;
        let replay: Vec<TrialUpdate> = stream
            .ring
            .iter()
            .filter(|u| u.seq > cursor)
            .cloned()
            .collect();
        let terminal = stream.terminal.clone();
        let live = if terminal.is_none() {
            let (tx, rx) = mpsc::channel();
            stream.subscribers.push(tx);
            Some(rx)
        } else {
            None
        };
        Some(Attached {
            replay,
            terminal,
            live,
            oldest: stream.ring.front().map_or(0, |u| u.seq),
        })
    }

    /// Synthesizes a terminal-only stream for a job that ended in a
    /// previous life (its ring died with that process): a digest-only
    /// `Done` for journaled completions, a `Cancelled` for journaled
    /// cancellations. `trials` is the caller's best knowledge of the job
    /// size (0 when unknown); a digest-only report carries `passes: 0`
    /// so clients can tell it from a live one.
    fn ensure_offline_stream(&self, job: u64, trials: u64) {
        let terminal = {
            let state = self.state.lock().expect("server state poisoned");
            if let Some(&digest) = state.done_digests.get(&job) {
                Some(Response::Done(JobReport {
                    job,
                    trials,
                    completed: 0,
                    quarantined: 0,
                    resumed_trials: 0,
                    passes: 0,
                    digest,
                    metrics_json: "{}".to_string(),
                }))
            } else if matches!(state.jobs.get(&job), Some(JobState::Cancelled)) {
                Some(Response::Cancelled {
                    job,
                    state: "cancelled".to_string(),
                })
            } else {
                None
            }
        };
        let Some(terminal) = terminal else { return };
        let mut streams = self.streams.lock().expect("stream registry poisoned");
        let stream = streams.entry(job).or_default();
        if stream.terminal.is_none() && stream.ring.is_empty() {
            stream.terminal = Some(terminal);
        }
    }

    /// Admission control. On success the job is journaled, queued, and
    /// has an (empty) outcome stream to attach to. A duplicate
    /// idempotency key short-circuits to the original job — the spec on
    /// the wire is ignored in favour of the one already admitted.
    fn admit(
        &self,
        tenant: &str,
        spec: JobSpec,
        idem: u64,
    ) -> Result<Result<u64, RejectReason>, std::io::Error> {
        let mut state = self.state.lock().expect("server state poisoned");
        if idem != 0 {
            if let Some(&job) = state.idem_index.get(&(tenant.to_string(), idem)) {
                drop(state);
                // The original may predate this life; make sure its
                // terminal is attachable before the client asks.
                self.ensure_offline_stream(job, spec.trials as u64);
                return Ok(Ok(job));
            }
        }
        if state.draining || state.shutdown {
            state.counters.rejected += 1;
            drop(state);
            self.observe(ObsEvent::JobRejected { reason: "draining" });
            return Ok(Err(RejectReason::Draining));
        }
        if state.queue.len() >= self.config.queue_cap {
            let depth = state.queue.len() as u64;
            state.counters.rejected += 1;
            drop(state);
            self.observe(ObsEvent::JobRejected {
                reason: "queue_full",
            });
            return Ok(Err(RejectReason::QueueFull {
                depth,
                cap: self.config.queue_cap as u64,
            }));
        }
        let active = state.tenants.get(tenant).copied().unwrap_or(0);
        if active >= self.config.tenant_quota {
            state.counters.rejected += 1;
            drop(state);
            self.observe(ObsEvent::JobRejected {
                reason: "tenant_quota",
            });
            return Ok(Err(RejectReason::TenantQuota {
                active: active as u64,
                quota: self.config.tenant_quota as u64,
            }));
        }

        let job = state.next_job;
        // Durable before visible: flush the admission record while still
        // holding the lock, so ids are journaled in order and a crash
        // between "accepted" and "queued" cannot happen.
        self.journal.record_accept(job, tenant, &spec, idem)?;
        state.next_job += 1;
        if idem != 0 {
            state.idem_index.insert((tenant.to_string(), idem), job);
        }
        *state.tenants.entry(tenant.to_string()).or_insert(0) += 1;
        state.queue.push_back(QueuedJob {
            job,
            tenant: tenant.to_string(),
            spec,
        });
        state.peak_depth = state.peak_depth.max(state.queue.len());
        state.jobs.insert(job, JobState::Queued);
        state.counters.submitted += 1;
        drop(state);
        self.streams
            .lock()
            .expect("stream registry poisoned")
            .entry(job)
            .or_default();
        self.observe(ObsEvent::JobAdmitted { job });
        self.work_ready.notify_one();
        Ok(Ok(job))
    }

    /// Executes a wire-level cancellation, returning the ack that tells
    /// the client where the cancel landed.
    fn cancel_job(&self, job: u64) -> Response {
        let mut state = self.state.lock().expect("server state poisoned");
        let landed = match state.jobs.get(&job) {
            Some(JobState::Queued) => {
                let mut tenant = None;
                state.queue.retain(|q| {
                    if q.job == job {
                        tenant = Some(q.tenant.clone());
                        false
                    } else {
                        true
                    }
                });
                if let Some(tenant) = tenant {
                    if let Some(active) = state.tenants.get_mut(&tenant) {
                        *active = active.saturating_sub(1);
                        if *active == 0 {
                            state.tenants.remove(&tenant);
                        }
                    }
                }
                state.jobs.insert(job, JobState::Cancelled);
                "queued"
            }
            Some(JobState::Running) => {
                if let Some(flag) = state.cancel_flags.get(&job) {
                    flag.store(true, Ordering::Relaxed);
                }
                "running"
            }
            Some(JobState::Done(_)) => "done",
            Some(JobState::Failed(_)) => "failed",
            Some(JobState::Cancelled) => "cancelled",
            None => {
                if state.done_digests.contains_key(&job) {
                    "done"
                } else {
                    "unknown"
                }
            }
        };
        drop(state);
        match landed {
            "queued" => {
                // Durable and terminal right here: the job will never
                // run, in this life or any other.
                let _ = self.journal.record_cancel(job);
                self.observe(ObsEvent::JobCancelled { job });
                self.publish_terminal(
                    job,
                    Response::Cancelled {
                        job,
                        state: "cancelled".to_string(),
                    },
                );
                self.idle.notify_all();
            }
            "running" => {
                // Durable now; the worker publishes the terminal when
                // the trial's cooperative check observes the flag.
                let _ = self.journal.record_cancel(job);
            }
            _ => {}
        }
        Response::Cancelled {
            job,
            state: landed.to_string(),
        }
    }

    fn stats(&self) -> ServerStats {
        let state = self.state.lock().expect("server state poisoned");
        let metrics_json = {
            let mut recorder = self.recorder.lock().expect("server recorder poisoned");
            recorder.finish();
            recorder.metrics().to_json()
        };
        ServerStats {
            submitted: state.counters.submitted,
            completed: state.counters.completed,
            rejected: state.counters.rejected,
            resumed: state.counters.resumed,
            queue_depth: state.queue.len() as u64,
            peak_queue_depth: state.peak_depth as u64,
            queue_cap: self.config.queue_cap as u64,
            draining: state.draining,
            metrics_json,
        }
    }

    fn status(&self, job: u64) -> Response {
        let state = self.state.lock().expect("server state poisoned");
        let (state_tag, digest) = match state.jobs.get(&job) {
            Some(JobState::Queued) => ("queued", 0),
            Some(JobState::Running) => ("running", 0),
            Some(JobState::Done(report)) => ("done", report.digest),
            Some(JobState::Failed(_)) => ("failed", 0),
            Some(JobState::Cancelled) => ("cancelled", 0),
            None => match state.done_digests.get(&job) {
                Some(digest) => ("done", *digest),
                None => ("unknown", 0),
            },
        };
        Response::Status {
            job,
            state: state_tag.to_string(),
            digest,
        }
    }

    fn worker_loop(&self) {
        loop {
            let (queued, cancel_flag) = {
                let mut state = self.state.lock().expect("server state poisoned");
                loop {
                    if state.shutdown {
                        return;
                    }
                    if let Some(job) = state.queue.pop_front() {
                        state.running += 1;
                        state.jobs.insert(job.job, JobState::Running);
                        let flag = Arc::new(AtomicBool::new(false));
                        state.cancel_flags.insert(job.job, Arc::clone(&flag));
                        break (job, flag);
                    }
                    state = self.work_ready.wait(state).expect("server state poisoned");
                }
            };

            let QueuedJob { job, tenant, spec } = queued;
            let path = self.checkpoint_path(job);
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_job(job, &spec, &path, Some(&cancel_flag), |update| {
                    self.publish_update(job, update);
                })
            }));

            let final_response = match result {
                Ok(Ok(report)) => {
                    // Journal the completion before deleting the
                    // checkpoint: a crash between the two re-runs nothing
                    // (the done record wins); the reverse order would
                    // re-run the whole job from zero.
                    let journaled = self.journal.record_done(job, report.digest);
                    if journaled.is_ok() {
                        let _ = std::fs::remove_file(&path);
                    }
                    let mut state = self.state.lock().expect("server state poisoned");
                    state.done_digests.insert(job, report.digest);
                    state.jobs.insert(job, JobState::Done(report.clone()));
                    state.counters.completed += 1;
                    drop(state);
                    self.observe(ObsEvent::JobCompleted { job });
                    Response::Done(report)
                }
                Ok(Err(JobError::Cancelled)) => {
                    // The checkpoint survives: completed trials stay
                    // durable for an un-cancelled resubmission. The
                    // cancel record is usually already journaled by the
                    // cancel handler; writing it again is harmless and
                    // covers the drain-deadline path.
                    let _ = self.journal.record_cancel(job);
                    let mut state = self.state.lock().expect("server state poisoned");
                    state.jobs.insert(job, JobState::Cancelled);
                    drop(state);
                    self.observe(ObsEvent::JobCancelled { job });
                    Response::Cancelled {
                        job,
                        state: "cancelled".to_string(),
                    }
                }
                Ok(Err(err)) => {
                    let detail = format!("job {job} failed: {err}");
                    let mut state = self.state.lock().expect("server state poisoned");
                    state.jobs.insert(job, JobState::Failed(detail.clone()));
                    drop(state);
                    Response::Error { detail }
                }
                Err(_) => {
                    let detail = format!("job {job} panicked outside the campaign engine");
                    let mut state = self.state.lock().expect("server state poisoned");
                    state.jobs.insert(job, JobState::Failed(detail.clone()));
                    drop(state);
                    Response::Error { detail }
                }
            };
            self.publish_terminal(job, final_response);

            let mut state = self.state.lock().expect("server state poisoned");
            state.cancel_flags.remove(&job);
            state.running -= 1;
            if let Some(active) = state.tenants.get_mut(&tenant) {
                *active = active.saturating_sub(1);
                if *active == 0 {
                    state.tenants.remove(&tenant);
                }
            }
            let quiescent = state.running == 0 && state.queue.is_empty();
            drop(state);
            if quiescent {
                self.idle.notify_all();
            }
        }
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let _ = stream.set_write_timeout(Some(self.config.write_timeout));
        let mut idle = Duration::ZERO;
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(payload) => {
                    idle = Duration::ZERO;
                    payload
                }
                Err(WireError::Closed) => return,
                Err(WireError::Io(kind))
                    if kind == std::io::ErrorKind::WouldBlock
                        || kind == std::io::ErrorKind::TimedOut =>
                {
                    if self.state.lock().expect("server state poisoned").shutdown {
                        return;
                    }
                    idle += READ_POLL;
                    if idle >= self.config.idle_timeout {
                        // Half-open or abandoned: no frame, not even a
                        // ping, within the idle deadline.
                        self.observe(ObsEvent::ConnIdleReaped {
                            timeout_ms: self.config.idle_timeout.as_millis() as u64,
                        });
                        return;
                    }
                    continue;
                }
                Err(err) => {
                    // Hostile or damaged peer: answer typed, then hang up.
                    if is_protocol_violation(&err) {
                        let _ = self.send_response(
                            &mut stream,
                            &Response::Error {
                                detail: err.to_string(),
                            },
                        );
                    }
                    return;
                }
            };
            let request = match Request::decode(&payload) {
                Ok(request) => request,
                Err(err) => {
                    let _ = self.send_response(
                        &mut stream,
                        &Response::Error {
                            detail: err.to_string(),
                        },
                    );
                    return;
                }
            };
            let keep_going = match request {
                Request::Submit { tenant, spec, idem } => {
                    self.handle_submit(&mut stream, &tenant, spec, idem)
                }
                Request::Status { job } => self.send_response(&mut stream, &self.status(job)),
                Request::Stats => self.send_response(&mut stream, &Response::Stats(self.stats())),
                Request::Drain => {
                    let pending = {
                        let mut state = self.state.lock().expect("server state poisoned");
                        state.draining = true;
                        (state.queue.len() + state.running) as u64
                    };
                    self.send_response(&mut stream, &Response::Draining { pending })
                }
                Request::Ping { nonce } => {
                    self.send_response(&mut stream, &Response::Pong { nonce })
                }
                Request::Cancel { job } => {
                    let ack = self.cancel_job(job);
                    self.send_response(&mut stream, &ack)
                }
                Request::ResumeStream { job, last_seen_seq } => {
                    self.handle_resume(&mut stream, job, last_seen_seq)
                }
            };
            if !keep_going {
                return;
            }
        }
    }

    fn handle_submit(
        &self,
        stream: &mut TcpStream,
        tenant: &str,
        spec: JobSpec,
        idem: u64,
    ) -> bool {
        match self.admit(tenant, spec, idem) {
            Ok(Ok(job)) => {
                if !self.send_response(
                    stream,
                    &Response::Accepted {
                        job,
                        epoch: self.epoch,
                    },
                ) {
                    return false;
                }
                self.pump_stream(stream, job, 0)
            }
            Ok(Err(reason)) => self.send_response(stream, &Response::Rejected { reason }),
            Err(err) => {
                let _ = self.send_response(
                    stream,
                    &Response::Error {
                        detail: format!("admission journaling failed: {err}"),
                    },
                );
                false
            }
        }
    }

    fn handle_resume(&self, stream: &mut TcpStream, job: u64, last_seen_seq: u64) -> bool {
        // Jobs that ended in a previous life have no ring; give them a
        // terminal-only stream before attaching.
        self.ensure_offline_stream(job, 0);
        let Some(attached) = self.attach(job, last_seen_seq) else {
            return self.send_response(
                stream,
                &Response::Error {
                    detail: format!("unknown job {job}"),
                },
            );
        };
        self.observe(ObsEvent::StreamResumed {
            job,
            from_seq: last_seen_seq,
        });
        if !self.send_response(
            stream,
            &Response::Resuming {
                job,
                epoch: self.epoch,
                oldest: attached.oldest,
            },
        ) {
            return false;
        }
        self.pump_attached(stream, job, attached)
    }

    /// Attaches at `cursor` and forwards the job's stream to its end.
    fn pump_stream(&self, stream: &mut TcpStream, job: u64, cursor: u64) -> bool {
        let Some(attached) = self.attach(job, cursor) else {
            return self.send_response(
                stream,
                &Response::Error {
                    detail: format!("unknown job {job}"),
                },
            );
        };
        self.pump_attached(stream, job, attached)
    }

    /// Replays buffered updates, then follows the live subscription (or
    /// the cached terminal) until the job's last word.
    fn pump_attached(&self, stream: &mut TcpStream, job: u64, attached: Attached) -> bool {
        for update in attached.replay {
            if !self.send_response(stream, &Response::Trial(update)) {
                return false;
            }
        }
        if let Some(terminal) = attached.terminal {
            return self.send_response(stream, &terminal);
        }
        let rx = attached
            .live
            .expect("attach without terminal must subscribe");
        loop {
            match rx.recv_timeout(READ_POLL) {
                Ok(response) => {
                    let last = matches!(
                        response,
                        Response::Done(_) | Response::Error { .. } | Response::Cancelled { .. }
                    );
                    if !self.send_response(stream, &response) {
                        // Client gone; the job keeps running and stays
                        // resumable via `resume_stream`.
                        return false;
                    }
                    if last {
                        return true;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.state.lock().expect("server state poisoned").shutdown {
                        let _ = self.send_response(
                            stream,
                            &Response::Error {
                                detail: format!(
                                    "job {job} interrupted by shutdown; it will resume on restart"
                                ),
                            },
                        );
                        return false;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Shutdown cleared the subscribers (the job was still
                    // queued); the journal will resume it.
                    let _ = self.send_response(
                        stream,
                        &Response::Error {
                            detail: format!(
                                "job {job} interrupted by shutdown; it will resume on restart"
                            ),
                        },
                    );
                    return false;
                }
            }
        }
    }
}

/// A running campaign server. Dropping it does *not* stop the threads;
/// call [`Server::shutdown`] (or [`Server::shutdown_with_deadline`]).
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, replays the journal (re-queuing in-flight jobs), appends a
    /// boot record (advancing the epoch), and spawns the acceptor and
    /// worker pool.
    ///
    /// # Errors
    ///
    /// I/O failure binding the listener or opening the spool/journal.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&config.spool)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (journal, replay) = JobJournal::open(config.spool.join("jobs.jsonl"))?;
        journal.record_boot()?;
        let epoch = replay.boots + 1;

        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.workers
        };

        let mut state = State {
            queue: VecDeque::new(),
            tenants: HashMap::new(),
            jobs: HashMap::new(),
            done_digests: replay.done.clone(),
            idem_index: replay
                .idem
                .iter()
                .map(|((tenant, key), job)| ((tenant.clone(), *key), *job))
                .collect(),
            cancel_flags: HashMap::new(),
            next_job: replay.next_job,
            running: 0,
            draining: false,
            shutdown: false,
            peak_depth: 0,
            counters: Counters::default(),
        };
        for &job in &replay.cancelled {
            state.jobs.insert(job, JobState::Cancelled);
        }
        // Re-queue every in-flight job from the journal. Resumed jobs
        // bypass the admission cap: they hold an admission from a
        // previous life, and refusing them would strand their journal
        // entries forever.
        for pending in &replay.pending {
            *state.tenants.entry(pending.tenant.clone()).or_insert(0) += 1;
            state.jobs.insert(pending.job, JobState::Queued);
            state.queue.push_back(QueuedJob {
                job: pending.job,
                tenant: pending.tenant.clone(),
                spec: pending.spec,
            });
            state.counters.resumed += 1;
        }
        state.peak_depth = state.queue.len();

        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(state),
            streams: Mutex::new(HashMap::new()),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            journal,
            recorder: Mutex::new(Recorder::new(1024)),
            epoch,
        });
        if replay.dropped_records > 0 {
            inner.observe(ObsEvent::CheckpointTorn {
                records: replay.dropped_records as u64,
                bytes: replay.dropped_bytes,
            });
        }
        {
            let mut streams = inner.streams.lock().expect("stream registry poisoned");
            for pending in &replay.pending {
                streams.entry(pending.job).or_default();
            }
        }
        for pending in &replay.pending {
            inner.observe(ObsEvent::JobResumed { job: pending.job });
        }
        inner.work_ready.notify_all();

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();

        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let inner = Arc::clone(&inner);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if inner.state.lock().expect("server state poisoned").shutdown {
                            return;
                        }
                        let conn_inner = Arc::clone(&inner);
                        let handle =
                            std::thread::spawn(move || conn_inner.handle_connection(stream));
                        connections
                            .lock()
                            .expect("connection registry poisoned")
                            .push(handle);
                    }
                    Err(_) => {
                        if inner.state.lock().expect("server state poisoned").shutdown {
                            return;
                        }
                    }
                }
            })
        };

        Ok(Server {
            inner,
            local_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's boot epoch (count of journal boots including this
    /// life).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// Jobs currently queued or running.
    pub fn pending_jobs(&self) -> usize {
        let state = self.inner.state.lock().expect("server state poisoned");
        state.queue.len() + state.running
    }

    /// Blocks until the queue is empty and no job is running, or the
    /// timeout elapses. Returns whether quiescence was reached.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("server state poisoned");
        while !state.queue.is_empty() || state.running > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .inner
                .idle
                .wait_timeout(state, deadline - now)
                .expect("server state poisoned");
            state = next;
        }
        true
    }

    /// Stops accepting, abandons queued jobs to the journal (a restart
    /// resumes them), finishes jobs already running, and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Graceful drain with a deadline: stops admitting, waits up to
    /// `deadline` for in-flight work to finish, then **cancels** the
    /// stragglers — queued jobs become terminal `Cancelled` immediately,
    /// running jobs have their flags raised and end at their next
    /// cooperative check — instead of hanging shutdown on them. Returns
    /// whether the drain was clean (nothing had to be cancelled).
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> bool {
        {
            let mut state = self.inner.state.lock().expect("server state poisoned");
            state.draining = true;
        }
        let clean = self.wait_idle(deadline);
        if !clean {
            let (cancelled_queued, flags) = {
                let mut state = self.inner.state.lock().expect("server state poisoned");
                let queued: Vec<(u64, String)> =
                    state.queue.drain(..).map(|q| (q.job, q.tenant)).collect();
                for (job, tenant) in &queued {
                    state.jobs.insert(*job, JobState::Cancelled);
                    if let Some(active) = state.tenants.get_mut(tenant) {
                        *active = active.saturating_sub(1);
                        if *active == 0 {
                            state.tenants.remove(tenant);
                        }
                    }
                }
                let flags: Vec<Arc<AtomicBool>> =
                    state.cancel_flags.values().map(Arc::clone).collect();
                (queued, flags)
            };
            for (job, _) in &cancelled_queued {
                let _ = self.inner.journal.record_cancel(*job);
                self.inner.observe(ObsEvent::JobCancelled { job: *job });
                self.inner.publish_terminal(
                    *job,
                    Response::Cancelled {
                        job: *job,
                        state: "cancelled".to_string(),
                    },
                );
            }
            for flag in flags {
                flag.store(true, Ordering::Relaxed);
            }
            // Running trials observe their flags at the next cooperative
            // watchdog check; give them a moment to become typed
            // cancellations rather than join-hangs.
            let _ = self.wait_idle(Duration::from_secs(30));
        }
        self.stop_and_join();
        clean
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("server state poisoned");
            state.shutdown = true;
            // Queued jobs go back to the journal: the next start resumes
            // them. Their subscribers are unblocked below.
            state.queue.clear();
        }
        {
            // Unblock connections pumping streams that will never end in
            // this life (their jobs were still queued).
            let mut streams = self.inner.streams.lock().expect("stream registry poisoned");
            for stream in streams.values_mut() {
                if stream.terminal.is_none() {
                    stream.subscribers.clear();
                }
            }
        }
        self.inner.work_ready.notify_all();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let connections = {
            let mut registry = self
                .connections
                .lock()
                .expect("connection registry poisoned");
            registry.drain(..).collect::<Vec<_>>()
        };
        for connection in connections {
            let _ = connection.join();
        }
    }
}
