//! Length- and FNV-checksummed binary framing for the campaign server.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! +-------+-----------+-----------+------------------+
//! | magic | len (u32) | crc (u64) | payload (len B)  |
//! | NVS1  | LE        | LE        | UTF-8 message    |
//! +-------+-----------+-----------+------------------+
//! ```
//!
//! where `crc` is the FNV-1a-64 hash of the payload bytes — the same
//! checksum the [`nightvision::checkpoint`] layer frames its journal
//! records with, so one hostile-input story covers both surfaces. The
//! decoder is total: every malformed input (truncated header, bad magic,
//! oversized length, checksum mismatch, non-UTF-8 payload) maps to a
//! typed [`WireError`], never a panic, and a reader with a socket
//! timeout can never hang on a short frame.

use std::io::{Read, Write};

use nightvision::checkpoint::fnv1a64;

/// Frame preamble: protocol name + version.
pub const MAGIC: [u8; 4] = *b"NVS1";

/// Largest accepted payload. Large enough for any message the protocol
/// defines, small enough that a hostile length field cannot balloon the
/// server's memory.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Everything that can go wrong reading or decoding a frame. Typed so a
/// server can count, log and answer hostility instead of dying of it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes the section needed.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The frame did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The hostile length.
        len: u64,
        /// The enforced maximum.
        max: u64,
    },
    /// The payload hash does not match the header checksum.
    ChecksumMismatch {
        /// Checksum announced by the frame header.
        announced: u64,
        /// FNV-1a-64 of the payload actually received.
        computed: u64,
    },
    /// The payload is not valid UTF-8.
    NotUtf8,
    /// The payload framed fine but is not a well-formed message.
    BadMessage {
        /// What the parser rejected.
        detail: String,
    },
    /// An I/O error (including read timeouts) from the transport.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Truncated { expected, got } => {
                write!(f, "frame truncated: needed {expected} bytes, got {got}")
            }
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            WireError::ChecksumMismatch {
                announced,
                computed,
            } => write!(
                f,
                "payload checksum {computed:#018x} does not match announced {announced:#018x}"
            ),
            WireError::NotUtf8 => write!(f, "payload is not UTF-8"),
            WireError::BadMessage { detail } => write!(f, "malformed message: {detail}"),
            WireError::Io(kind) => write!(f, "transport error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        WireError::Io(err.kind())
    }
}

/// Whether the error indicates a hostile or damaged peer (as opposed to
/// a clean close or a transport hiccup) — servers drop the connection on
/// these after answering with a typed error.
pub fn is_protocol_violation(err: &WireError) -> bool {
    matches!(
        err,
        WireError::Truncated { .. }
            | WireError::BadMagic { .. }
            | WireError::Oversized { .. }
            | WireError::ChecksumMismatch { .. }
            | WireError::NotUtf8
            | WireError::BadMessage { .. }
    )
}

/// Encodes `payload` as one frame.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — outbound messages are
/// ours, and an oversized one is a bug, not input.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "outbound frame of {} bytes exceeds MAX_PAYLOAD",
        payload.len()
    );
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(16 + bytes.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Writes one frame. A single `write_all` so a concurrent reader never
/// observes a half-written frame from this process (kills mid-write are
/// the peer's [`WireError::Truncated`] to absorb).
pub fn write_frame(writer: &mut impl Write, payload: &str) -> std::io::Result<()> {
    writer.write_all(&encode_frame(payload))?;
    writer.flush()
}

/// Reads exactly `buf.len()` bytes; `Truncated` on a mid-section EOF.
fn fill(reader: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    let mut got = 0;
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: buf.len(),
                    got,
                })
            }
            Ok(n) => got += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err.into()),
        }
    }
    Ok(())
}

/// Reads and validates one frame, returning the payload.
///
/// A clean EOF *before any byte* of the frame is [`WireError::Closed`]
/// (the peer hung up between messages); an EOF anywhere inside the frame
/// is [`WireError::Truncated`].
///
/// # Errors
///
/// Every way a frame can be malformed maps to its [`WireError`] variant;
/// the decoder never panics on wire input.
pub fn read_frame(reader: &mut impl Read) -> Result<String, WireError> {
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < magic.len() {
        match reader.read(&mut magic[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: magic.len(),
                    got,
                })
            }
            Ok(n) => got += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err.into()),
        }
    }
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }

    let mut len_buf = [0u8; 4];
    fill(reader, &mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len: len as u64,
            max: MAX_PAYLOAD as u64,
        });
    }

    let mut crc_buf = [0u8; 8];
    fill(reader, &mut crc_buf)?;
    let announced = u64::from_le_bytes(crc_buf);

    let mut payload = vec![0u8; len];
    fill(reader, &mut payload)?;
    let computed = fnv1a64(&payload);
    if computed != announced {
        return Err(WireError::ChecksumMismatch {
            announced,
            computed,
        });
    }
    String::from_utf8(payload).map_err(|_| WireError::NotUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let frame = encode_frame("hello, campaign");
        let payload = read_frame(&mut Cursor::new(frame)).unwrap();
        assert_eq!(payload, "hello, campaign");
    }

    #[test]
    fn empty_stream_is_a_clean_close() {
        assert_eq!(
            read_frame(&mut Cursor::new(Vec::new())),
            Err(WireError::Closed)
        );
    }

    #[test]
    fn mid_magic_eof_is_truncation_not_close() {
        let err = read_frame(&mut Cursor::new(b"NV".to_vec())).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                expected: 4,
                got: 2
            }
        ));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut frame = encode_frame("x");
        frame[0] = b'X';
        let err = read_frame(&mut Cursor::new(frame)).unwrap_err();
        assert!(matches!(err, WireError::BadMagic { .. }));
    }

    #[test]
    fn oversized_length_is_refused_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u64.to_le_bytes());
        let err = read_frame(&mut Cursor::new(frame)).unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let mut frame = encode_frame("payload under test");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(frame)).unwrap_err();
        assert!(matches!(err, WireError::ChecksumMismatch { .. }));
    }

    #[test]
    fn non_utf8_payload_is_typed() {
        let bytes = [0xffu8, 0xfe, 0x01];
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&bytes).to_le_bytes());
        frame.extend_from_slice(&bytes);
        let err = read_frame(&mut Cursor::new(frame)).unwrap_err();
        assert_eq!(err, WireError::NotUtf8);
    }
}
