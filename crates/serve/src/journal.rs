//! The server's crash journal: every admitted job is durable before the
//! client hears "accepted".
//!
//! An append-only log of framed records (the same length- and
//! FNV-checksummed line format as [`nightvision::checkpoint`]):
//!
//! * `accept` — job id, tenant, full [`JobSpec`] and the client's
//!   idempotency key, written at admission *before* the `Accepted`
//!   response leaves the server;
//! * `done` — job id and outcome digest, written when the job's report
//!   is final;
//! * `cancel` — job id, written when a wire-level cancellation lands, so
//!   a cancelled job is never resurrected by a replay;
//! * `boot` — written once per server start. The count of boot records
//!   is the server's *epoch*: a client resuming a stream compares epochs
//!   to learn that sequence numbers restarted.
//!
//! A restarted server replays the journal: `accept` without `done` or
//! `cancel` is an in-flight job to re-queue (its per-job checkpoint
//! carries whatever trials already completed); `done` records serve
//! status queries for jobs that finished in a previous life, and the
//! idempotency keys of accept records are re-indexed so duplicate
//! submissions stay duplicates across restarts. A torn tail — the crash
//! landed mid-append — is dropped, counted, and physically truncated,
//! exactly like a torn campaign checkpoint.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use nightvision::checkpoint::{escape, frame, parse_frame};

use crate::job::JobSpec;
use crate::proto::{field_str, field_u64};

/// One in-flight job recovered from the journal.
#[derive(Clone, PartialEq, Debug)]
pub struct PendingJob {
    /// The job id assigned at admission.
    pub job: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// The job spec.
    pub spec: JobSpec,
    /// The client's idempotency key (0 = none).
    pub idem: u64,
}

/// What replaying the journal recovered.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct JournalState {
    /// Jobs accepted but not finished, in admission order.
    pub pending: Vec<PendingJob>,
    /// Digests of jobs that finished in previous lives, by job id.
    pub done: BTreeMap<u64, u64>,
    /// The next job id a fresh admission should use.
    pub next_job: u64,
    /// Jobs cancelled in any life (and therefore never re-queued).
    pub cancelled: BTreeSet<u64>,
    /// Idempotency index recovered from accept records: `(tenant, key)`
    /// to job id, for non-zero keys only.
    pub idem: BTreeMap<(String, u64), u64>,
    /// Boot records replayed — the epoch of the life that wrote the last
    /// one. The opening server appends its own boot record *after*
    /// replay, so its epoch is `boots + 1`.
    pub boots: u64,
    /// Torn/corrupt trailing records dropped (and truncated) at replay.
    pub dropped_records: usize,
    /// Bytes those records occupied.
    pub dropped_bytes: u64,
}

/// The append half of the journal.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    writer: Mutex<File>,
}

impl JobJournal {
    /// Opens (creating if absent) the journal at `path`, replaying what
    /// is already there.
    ///
    /// # Errors
    ///
    /// I/O failure opening or reading the file. Malformed *content* is
    /// never an error: replay stops at the first bad line, reports it in
    /// [`JournalState`], and truncates it away.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(JobJournal, JournalState)> {
        let path = path.as_ref().to_path_buf();
        let mut existing = String::new();
        match File::open(&path) {
            Ok(mut file) => {
                file.read_to_string(&mut existing)?;
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => return Err(err),
        }

        let mut state = JournalState {
            next_job: 1,
            ..JournalState::default()
        };
        let mut accepted: BTreeMap<u64, PendingJob> = BTreeMap::new();
        let mut retained_bytes = 0usize;
        let total_lines = existing.split_terminator('\n').count();
        let mut good = 0usize;
        for line in existing.split_terminator('\n') {
            let Some(entry) = parse_frame(line).and_then(parse_record) else {
                break;
            };
            match entry {
                Record::Accept(pending) => {
                    state.next_job = state.next_job.max(pending.job + 1);
                    if pending.idem != 0 {
                        state
                            .idem
                            .insert((pending.tenant.clone(), pending.idem), pending.job);
                    }
                    accepted.insert(pending.job, pending);
                }
                Record::Done { job, digest } => {
                    state.next_job = state.next_job.max(job + 1);
                    accepted.remove(&job);
                    state.cancelled.remove(&job);
                    state.done.insert(job, digest);
                }
                Record::Cancel { job } => {
                    state.next_job = state.next_job.max(job + 1);
                    // A cancel after done is a no-op (the cancel lost the
                    // race); otherwise the job must not be re-queued.
                    if !state.done.contains_key(&job) {
                        accepted.remove(&job);
                        state.cancelled.insert(job);
                    }
                }
                Record::Boot => {
                    state.boots += 1;
                }
            }
            retained_bytes += line.len() + 1;
            good += 1;
        }
        state.dropped_records = total_lines - good;
        state.dropped_bytes = (existing.len().saturating_sub(retained_bytes)) as u64;
        if state.dropped_bytes > 0 {
            // Same repair as the campaign checkpoint: truncate what we
            // refused to trust so the next append lands on an intact log.
            let repair = OpenOptions::new().write(true).open(&path)?;
            repair.set_len(retained_bytes as u64)?;
        }
        state.pending = accepted.into_values().collect();

        let writer = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            JobJournal {
                path,
                writer: Mutex::new(writer),
            },
            state,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records an admission. Flushed before returning, so a job the
    /// client saw accepted is a job a restart will resume.
    ///
    /// # Errors
    ///
    /// I/O failure; the caller must fail the admission, not ignore it.
    pub fn record_accept(
        &self,
        job: u64,
        tenant: &str,
        spec: &JobSpec,
        idem: u64,
    ) -> std::io::Result<()> {
        let body = format!(
            "{{\"rec\": \"accept\", \"job\": {job}, \"tenant\": \"{}\", \"idem\": {idem}, {}}}",
            escape(tenant),
            spec.encode_fields()
        );
        self.append(&body)
    }

    /// Records a completion with its identity digest.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn record_done(&self, job: u64, digest: u64) -> std::io::Result<()> {
        self.append(&format!(
            "{{\"rec\": \"done\", \"job\": {job}, \"digest\": {digest}}}"
        ))
    }

    /// Records a wire-level cancellation, so a replay never resurrects
    /// the job.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn record_cancel(&self, job: u64) -> std::io::Result<()> {
        self.append(&format!("{{\"rec\": \"cancel\", \"job\": {job}}}"))
    }

    /// Records a server start. Called once by the server *after* replay —
    /// never implicitly by [`JobJournal::open`], so read-only replays (and
    /// torn-tail repairs) leave the file byte-identical.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn record_boot(&self) -> std::io::Result<()> {
        self.append("{\"rec\": \"boot\"}")
    }

    fn append(&self, body: &str) -> std::io::Result<()> {
        let mut writer = self.writer.lock().expect("journal writer poisoned");
        writer.write_all(frame(body).as_bytes())?;
        writer.flush()
    }
}

enum Record {
    Accept(PendingJob),
    Done { job: u64, digest: u64 },
    Cancel { job: u64 },
    Boot,
}

fn parse_record(body: &str) -> Option<Record> {
    match field_str(body, "rec")?.as_str() {
        "accept" => Some(Record::Accept(PendingJob {
            job: field_u64(body, "job")?,
            tenant: field_str(body, "tenant")?,
            spec: JobSpec::decode_fields(body).ok()?,
            // Absent on records written before idempotency keys existed.
            idem: field_u64(body, "idem").unwrap_or(0),
        })),
        "done" => Some(Record::Done {
            job: field_u64(body, "job")?,
            digest: field_u64(body, "digest")?,
        }),
        "cancel" => Some(Record::Cancel {
            job: field_u64(body, "job")?,
        }),
        "boot" => Some(Record::Boot),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn scratch(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("nv_serve_journal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            kind: JobKind::NvCore,
            trials: 3,
            master_seed: seed,
            threads: 1,
            deadline_steps: 0,
            retry_budget: 1,
            flake_ppm: 0,
        }
    }

    #[test]
    fn replay_recovers_pending_jobs_and_next_id() {
        let path = scratch("replay");
        {
            let (journal, state) = JobJournal::open(&path).unwrap();
            assert_eq!(
                state,
                JournalState {
                    next_job: 1,
                    ..JournalState::default()
                }
            );
            journal.record_accept(1, "acme", &spec(1), 0).unwrap();
            journal.record_accept(2, "acme", &spec(2), 0).unwrap();
            journal.record_accept(3, "globex", &spec(3), 0).unwrap();
            journal.record_done(2, 0xd16e57).unwrap();
        }
        let (_journal, state) = JobJournal::open(&path).unwrap();
        assert_eq!(state.next_job, 4);
        assert_eq!(state.done.get(&2), Some(&0xd16e57));
        let pending: Vec<u64> = state.pending.iter().map(|p| p.job).collect();
        assert_eq!(pending, vec![1, 3], "done jobs must not be re-queued");
        assert_eq!(state.pending[0].tenant, "acme");
        assert_eq!(state.pending[1].spec, spec(3));
        assert_eq!(state.dropped_records, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cancel_records_keep_jobs_out_of_pending() {
        let path = scratch("cancel");
        {
            let (journal, _) = JobJournal::open(&path).unwrap();
            journal.record_accept(1, "acme", &spec(1), 0).unwrap();
            journal.record_accept(2, "acme", &spec(2), 0).unwrap();
            journal.record_cancel(1).unwrap();
            // Cancel that lost the race to done: done must win.
            journal.record_accept(3, "acme", &spec(3), 0).unwrap();
            journal.record_done(3, 77).unwrap();
            journal.record_cancel(3).unwrap();
        }
        let (_journal, state) = JobJournal::open(&path).unwrap();
        let pending: Vec<u64> = state.pending.iter().map(|p| p.job).collect();
        assert_eq!(pending, vec![2], "cancelled jobs must not resurrect");
        assert!(state.cancelled.contains(&1));
        assert!(
            !state.cancelled.contains(&3),
            "a done job is done, not cancelled"
        );
        assert_eq!(state.done.get(&3), Some(&77));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn boot_records_count_epochs_and_idem_keys_reindex() {
        let path = scratch("boot");
        {
            let (journal, state) = JobJournal::open(&path).unwrap();
            assert_eq!(state.boots, 0);
            journal.record_boot().unwrap();
            journal.record_accept(1, "acme", &spec(1), 0xaaaa).unwrap();
            journal
                .record_accept(2, "globex", &spec(2), 0xaaaa)
                .unwrap();
            journal.record_accept(3, "acme", &spec(3), 0).unwrap();
        }
        {
            let (journal, state) = JobJournal::open(&path).unwrap();
            assert_eq!(state.boots, 1);
            journal.record_boot().unwrap();
        }
        let (_journal, state) = JobJournal::open(&path).unwrap();
        assert_eq!(state.boots, 2);
        // Same key under different tenants indexes two distinct jobs;
        // key 0 is never indexed.
        assert_eq!(state.idem.get(&("acme".to_string(), 0xaaaa)), Some(&1));
        assert_eq!(state.idem.get(&("globex".to_string(), 0xaaaa)), Some(&2));
        assert_eq!(state.idem.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_counted_and_truncated() {
        let path = scratch("torn");
        {
            let (journal, _) = JobJournal::open(&path).unwrap();
            journal.record_accept(1, "acme", &spec(1), 0).unwrap();
        }
        let intact_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(b"{\"len\": 40, \"crc\": 1, \"body\"")
                .unwrap();
        }
        let (journal, state) = JobJournal::open(&path).unwrap();
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.dropped_records, 1);
        assert!(state.dropped_bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);
        // Post-repair appends survive the next replay.
        journal.record_done(1, 9).unwrap();
        drop(journal);
        let (_journal, state) = JobJournal::open(&path).unwrap();
        assert!(state.pending.is_empty());
        assert_eq!(state.done.get(&1), Some(&9));
        assert_eq!(state.dropped_records, 0);
        let _ = std::fs::remove_file(&path);
    }
}
