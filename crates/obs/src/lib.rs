//! # nv-obs — structured observability for the NightVision reproduction
//!
//! A zero-cost-when-disabled tracing and metrics layer shared by the
//! whole workspace:
//!
//! - **Typed events** ([`ObsEvent`]/[`EventKind`]): BTB allocations,
//!   false-hit deallocations, evictions, LBR records and clamps,
//!   squashes, resteers and fault-injector perturbations — the event
//!   vocabulary of the paper's methodology, generalized from
//!   `nv_uarch::events`.
//! - **Recorders** ([`Recorder`]): per-context collectors with a
//!   bounded event ring, nesting attack-phase spans ([`Phase`]) and
//!   exact integer aggregates that survive ring overflow.
//! - **Metrics** ([`Metrics`]): order-insensitively mergeable,
//!   integer-valued aggregates with power-of-two cycle histograms
//!   ([`CycleHistogram`]) and a byte-stable canonical JSON rendering —
//!   the property that lets the campaign engine promise byte-identical
//!   metrics at any `--threads` value.
//! - **Exporters**: [`Metrics::summary_table`] for humans,
//!   [`Metrics::to_json`] for machines, and [`export::chrome_trace`]
//!   for Perfetto / `chrome://tracing` timelines.
//!
//! ## Zero cost when disabled
//!
//! This crate has no globals and no macros: a context that is not
//! handed a recorder pays exactly one `Option` null check per emission
//! site. A context holding a *disabled* recorder ([`Recorder::disabled`])
//! pays one additional boolean test, which is what
//! `repro_obs_profile` measures against the ≤ 2 % budget.
//!
//! ```
//! use nv_obs::{ObsEvent, Phase, Recorder};
//!
//! let mut rec = Recorder::new(1024);
//! rec.enter(Phase::Probe, 100);
//! rec.event(112, ObsEvent::LbrRecord { from: 0x40, to: 0x80, elapsed: 9, mispredicted: false });
//! rec.exit(Phase::Probe, 130);
//! let metrics = rec.metrics();
//! assert_eq!(metrics.phase(Phase::Probe).unwrap().total_cycles, 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod export;
mod metrics;
mod recorder;

pub use event::{EventKind, ObsEvent};
pub use metrics::{CycleHistogram, Metrics, Phase, PhaseStats, HISTOGRAM_BUCKETS};
pub use recorder::{
    Recorder, SpanRecord, TimedEvent, DEFAULT_EVENT_CAPACITY, DEFAULT_SPAN_CAPACITY,
};
