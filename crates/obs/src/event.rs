//! The typed event model: what the instrumented layers report.
//!
//! Events generalize `nv_uarch::events::FrontEndEvent` (the bounded debug
//! log that tests assert against) into a form the whole stack can share:
//! plain `u64` addresses instead of `VirtAddr` (so this crate sits below
//! every other crate in the workspace), a stable [`EventKind`] index for
//! O(1) counting, and per-event argument rendering for the Chrome-trace
//! exporter.

/// One observable microarchitectural or injected event.
///
/// Addresses are raw `u64` virtual addresses; producers convert from
/// their own address types at the emission site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ObsEvent {
    /// A taken transfer allocated (or refreshed) a BTB entry.
    BtbAllocate {
        /// PC of the allocating transfer.
        pc: u64,
        /// Its target.
        target: u64,
    },
    /// A BTB entry was deallocated after a false hit.
    BtbDeallocate {
        /// The dead entry's branch PC (tag-aliased view of the fetcher).
        pc: u64,
        /// Whether the triggering instruction was speculative.
        speculative: bool,
    },
    /// A BTB lookup false-hit: the predicted location decoded to a
    /// non-transfer instruction or fell mid-instruction (Takeaway 1).
    BtbFalseHit {
        /// Fetch PC at which the false hit materialized.
        pc: u64,
        /// `true` if the predicted byte fell inside an instruction,
        /// `false` if a non-transfer instruction ended there.
        mid_instruction: bool,
    },
    /// A BTB entry was evicted by the fault injector or a competing
    /// process model (not by the predictor's own replacement).
    BtbEvict {
        /// Targeted set index.
        set: u32,
        /// Targeted way index.
        way: u32,
        /// Whether a valid entry was actually displaced.
        displaced: bool,
    },
    /// A taken control transfer retired and was recorded in the LBR.
    LbrRecord {
        /// PC of the retired transfer.
        from: u64,
        /// Its target.
        to: u64,
        /// The record's elapsed-cycles field (after any injected jitter).
        elapsed: u64,
        /// Whether the transfer was mispredicted.
        mispredicted: bool,
    },
    /// The LBR elapsed-cycle computation clamped a non-monotone delta to
    /// the 1-cycle floor instead of silently saturating to zero.
    LbrClamped {
        /// PC of the affected record.
        from: u64,
        /// How far backwards the retire cycle stepped.
        shortfall: u64,
    },
    /// The pipeline squashed (misprediction, false hit, RSB mismatch).
    Squash {
        /// PC of the offending instruction.
        pc: u64,
        /// Stable cause label (mirrors `nv_uarch::SquashCause` variants).
        cause: &'static str,
        /// Penalty charged, in cycles.
        penalty: u64,
    },
    /// Decode resteered fetch for a direct unconditional transfer the BTB
    /// missed — the cheap front-end redirect, not a full squash.
    Resteer {
        /// PC of the resteering transfer.
        pc: u64,
        /// Resolved target.
        target: u64,
        /// Penalty charged, in cycles.
        penalty: u64,
    },
    /// The fault injector added measurement jitter to an LBR record.
    InjectedJitter {
        /// PC of the jittered record.
        pc: u64,
        /// Cycles added to the record's elapsed field.
        cycles: u64,
    },
    /// The fault injector raised a spurious preemption squash.
    InjectedSquash {
        /// PC the preemption interrupted.
        pc: u64,
        /// Penalty charged, in cycles.
        penalty: u64,
    },
    /// A supervised campaign retried a failed trial on a fresh
    /// deterministic sub-stream of its RNG.
    TrialRetried {
        /// Trial index within the campaign.
        trial: u64,
        /// The retry attempt number (1 = first retry).
        attempt: u64,
    },
    /// A supervised campaign quarantined a trial: its final attempt failed
    /// and the campaign carried on without it.
    TrialQuarantined {
        /// Trial index within the campaign.
        trial: u64,
    },
    /// A campaign checkpoint persisted a completed trial's result.
    CheckpointAppended {
        /// Trial index within the campaign.
        trial: u64,
    },
    /// A resumed campaign skipped a trial whose result was already in its
    /// checkpoint.
    CheckpointResumed {
        /// Trial index within the campaign.
        trial: u64,
    },
    /// A checkpoint or journal file was reopened with a torn or corrupt
    /// tail: the unreadable trailing records were dropped and their
    /// trials/jobs will re-run. A daemonized server surfaces this in its
    /// metrics instead of losing it on stderr.
    CheckpointTorn {
        /// Records dropped from the file's tail.
        records: u64,
        /// Bytes those records spanned.
        bytes: u64,
    },
    /// The campaign server admitted a job past admission control.
    JobAdmitted {
        /// Server-assigned job id.
        job: u64,
    },
    /// The campaign server rejected a submission with a typed reason.
    JobRejected {
        /// Stable snake_case label of the rejection reason.
        reason: &'static str,
    },
    /// A restarted campaign server re-enqueued a journaled in-flight job.
    JobResumed {
        /// Server-assigned job id.
        job: u64,
    },
    /// The campaign server finished a job (all trials accounted for).
    JobCompleted {
        /// Server-assigned job id.
        job: u64,
    },
    /// A wire-level cancellation terminated a job before completion.
    JobCancelled {
        /// Server-assigned job id.
        job: u64,
    },
    /// A client re-attached to a job's outcome stream with
    /// `resume_stream`, replaying updates after its cursor.
    StreamResumed {
        /// Server-assigned job id.
        job: u64,
        /// The client's `last_seen_seq` cursor.
        from_seq: u64,
    },
    /// A connection write blew its deadline (a stalled or non-reading
    /// peer); the connection was dropped instead of wedging a writer.
    ConnWriteStalled {
        /// The write deadline that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// A half-open connection sent no frame (not even a ping) within the
    /// idle deadline and was reaped.
    ConnIdleReaped {
        /// The idle deadline that expired, in milliseconds.
        timeout_ms: u64,
    },
}

/// The event's kind — a dense index for counter arrays and a stable name
/// for exporters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum EventKind {
    /// [`ObsEvent::BtbAllocate`].
    BtbAllocate,
    /// [`ObsEvent::BtbDeallocate`].
    BtbDeallocate,
    /// [`ObsEvent::BtbFalseHit`].
    BtbFalseHit,
    /// [`ObsEvent::BtbEvict`].
    BtbEvict,
    /// [`ObsEvent::LbrRecord`].
    LbrRecord,
    /// [`ObsEvent::LbrClamped`].
    LbrClamped,
    /// [`ObsEvent::Squash`].
    Squash,
    /// [`ObsEvent::Resteer`].
    Resteer,
    /// [`ObsEvent::InjectedJitter`].
    InjectedJitter,
    /// [`ObsEvent::InjectedSquash`].
    InjectedSquash,
    /// [`ObsEvent::TrialRetried`].
    TrialRetried,
    /// [`ObsEvent::TrialQuarantined`].
    TrialQuarantined,
    /// [`ObsEvent::CheckpointAppended`].
    CheckpointAppended,
    /// [`ObsEvent::CheckpointResumed`].
    CheckpointResumed,
    /// [`ObsEvent::CheckpointTorn`].
    CheckpointTorn,
    /// [`ObsEvent::JobAdmitted`].
    JobAdmitted,
    /// [`ObsEvent::JobRejected`].
    JobRejected,
    /// [`ObsEvent::JobResumed`].
    JobResumed,
    /// [`ObsEvent::JobCompleted`].
    JobCompleted,
    /// [`ObsEvent::JobCancelled`].
    JobCancelled,
    /// [`ObsEvent::StreamResumed`].
    StreamResumed,
    /// [`ObsEvent::ConnWriteStalled`].
    ConnWriteStalled,
    /// [`ObsEvent::ConnIdleReaped`].
    ConnIdleReaped,
}

impl EventKind {
    /// Number of kinds (the counter-array length).
    pub const COUNT: usize = 23;

    /// Every kind, in counter order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::BtbAllocate,
        EventKind::BtbDeallocate,
        EventKind::BtbFalseHit,
        EventKind::BtbEvict,
        EventKind::LbrRecord,
        EventKind::LbrClamped,
        EventKind::Squash,
        EventKind::Resteer,
        EventKind::InjectedJitter,
        EventKind::InjectedSquash,
        EventKind::TrialRetried,
        EventKind::TrialQuarantined,
        EventKind::CheckpointAppended,
        EventKind::CheckpointResumed,
        EventKind::CheckpointTorn,
        EventKind::JobAdmitted,
        EventKind::JobRejected,
        EventKind::JobResumed,
        EventKind::JobCompleted,
        EventKind::JobCancelled,
        EventKind::StreamResumed,
        EventKind::ConnWriteStalled,
        EventKind::ConnIdleReaped,
    ];

    /// Whether this kind is emitted by the campaign fault-tolerance layer
    /// rather than the simulated microarchitecture. Lifecycle kinds are
    /// omitted from metrics JSON when their count is zero, so metrics from
    /// unsupervised runs render byte-identically to before these kinds
    /// existed.
    pub fn is_campaign_lifecycle(self) -> bool {
        matches!(
            self,
            EventKind::TrialRetried
                | EventKind::TrialQuarantined
                | EventKind::CheckpointAppended
                | EventKind::CheckpointResumed
        )
    }

    /// Whether this kind is emitted by the extraction-service layer
    /// (`nv-serve`) rather than the simulated microarchitecture. Like the
    /// campaign-lifecycle kinds, these are omitted from metrics JSON when
    /// zero so pre-service metrics render byte-identically.
    pub fn is_service_lifecycle(self) -> bool {
        matches!(
            self,
            EventKind::CheckpointTorn
                | EventKind::JobAdmitted
                | EventKind::JobRejected
                | EventKind::JobResumed
                | EventKind::JobCompleted
                | EventKind::JobCancelled
                | EventKind::StreamResumed
                | EventKind::ConnWriteStalled
                | EventKind::ConnIdleReaped
        )
    }

    /// Dense index in `0..COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in metrics JSON and Chrome traces.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BtbAllocate => "btb_allocate",
            EventKind::BtbDeallocate => "btb_deallocate",
            EventKind::BtbFalseHit => "btb_false_hit",
            EventKind::BtbEvict => "btb_evict",
            EventKind::LbrRecord => "lbr_record",
            EventKind::LbrClamped => "lbr_clamped",
            EventKind::Squash => "squash",
            EventKind::Resteer => "resteer",
            EventKind::InjectedJitter => "injected_jitter",
            EventKind::InjectedSquash => "injected_squash",
            EventKind::TrialRetried => "trial_retried",
            EventKind::TrialQuarantined => "trial_quarantined",
            EventKind::CheckpointAppended => "checkpoint_appended",
            EventKind::CheckpointResumed => "checkpoint_resumed",
            EventKind::CheckpointTorn => "checkpoint_torn",
            EventKind::JobAdmitted => "job_admitted",
            EventKind::JobRejected => "job_rejected",
            EventKind::JobResumed => "job_resumed",
            EventKind::JobCompleted => "job_completed",
            EventKind::JobCancelled => "job_cancelled",
            EventKind::StreamResumed => "stream_resumed",
            EventKind::ConnWriteStalled => "conn_write_stalled",
            EventKind::ConnIdleReaped => "conn_idle_reaped",
        }
    }
}

impl ObsEvent {
    /// The event's [`EventKind`].
    pub fn kind(&self) -> EventKind {
        match self {
            ObsEvent::BtbAllocate { .. } => EventKind::BtbAllocate,
            ObsEvent::BtbDeallocate { .. } => EventKind::BtbDeallocate,
            ObsEvent::BtbFalseHit { .. } => EventKind::BtbFalseHit,
            ObsEvent::BtbEvict { .. } => EventKind::BtbEvict,
            ObsEvent::LbrRecord { .. } => EventKind::LbrRecord,
            ObsEvent::LbrClamped { .. } => EventKind::LbrClamped,
            ObsEvent::Squash { .. } => EventKind::Squash,
            ObsEvent::Resteer { .. } => EventKind::Resteer,
            ObsEvent::InjectedJitter { .. } => EventKind::InjectedJitter,
            ObsEvent::InjectedSquash { .. } => EventKind::InjectedSquash,
            ObsEvent::TrialRetried { .. } => EventKind::TrialRetried,
            ObsEvent::TrialQuarantined { .. } => EventKind::TrialQuarantined,
            ObsEvent::CheckpointAppended { .. } => EventKind::CheckpointAppended,
            ObsEvent::CheckpointResumed { .. } => EventKind::CheckpointResumed,
            ObsEvent::CheckpointTorn { .. } => EventKind::CheckpointTorn,
            ObsEvent::JobAdmitted { .. } => EventKind::JobAdmitted,
            ObsEvent::JobRejected { .. } => EventKind::JobRejected,
            ObsEvent::JobResumed { .. } => EventKind::JobResumed,
            ObsEvent::JobCompleted { .. } => EventKind::JobCompleted,
            ObsEvent::JobCancelled { .. } => EventKind::JobCancelled,
            ObsEvent::StreamResumed { .. } => EventKind::StreamResumed,
            ObsEvent::ConnWriteStalled { .. } => EventKind::ConnWriteStalled,
            ObsEvent::ConnIdleReaped { .. } => EventKind::ConnIdleReaped,
        }
    }

    /// Cycles of penalty/latency the event contributed, if it is a timing
    /// event (squashes, resteers); `None` for pure state events.
    pub fn penalty(&self) -> Option<u64> {
        match self {
            ObsEvent::Squash { penalty, .. }
            | ObsEvent::Resteer { penalty, .. }
            | ObsEvent::InjectedSquash { penalty, .. } => Some(*penalty),
            _ => None,
        }
    }

    /// Renders the event's payload as a Chrome-trace `args` JSON object.
    pub fn args_json(&self) -> String {
        match *self {
            ObsEvent::BtbAllocate { pc, target } => {
                format!("{{\"pc\": \"{pc:#x}\", \"target\": \"{target:#x}\"}}")
            }
            ObsEvent::BtbDeallocate { pc, speculative } => {
                format!("{{\"pc\": \"{pc:#x}\", \"speculative\": {speculative}}}")
            }
            ObsEvent::BtbFalseHit {
                pc,
                mid_instruction,
            } => {
                format!("{{\"pc\": \"{pc:#x}\", \"mid_instruction\": {mid_instruction}}}")
            }
            ObsEvent::BtbEvict {
                set,
                way,
                displaced,
            } => {
                format!("{{\"set\": {set}, \"way\": {way}, \"displaced\": {displaced}}}")
            }
            ObsEvent::LbrRecord {
                from,
                to,
                elapsed,
                mispredicted,
            } => format!(
                "{{\"from\": \"{from:#x}\", \"to\": \"{to:#x}\", \"elapsed\": {elapsed}, \
                 \"mispredicted\": {mispredicted}}}"
            ),
            ObsEvent::LbrClamped { from, shortfall } => {
                format!("{{\"from\": \"{from:#x}\", \"shortfall\": {shortfall}}}")
            }
            ObsEvent::Squash { pc, cause, penalty } => {
                format!("{{\"pc\": \"{pc:#x}\", \"cause\": \"{cause}\", \"penalty\": {penalty}}}")
            }
            ObsEvent::Resteer {
                pc,
                target,
                penalty,
            } => format!(
                "{{\"pc\": \"{pc:#x}\", \"target\": \"{target:#x}\", \"penalty\": {penalty}}}"
            ),
            ObsEvent::InjectedJitter { pc, cycles } => {
                format!("{{\"pc\": \"{pc:#x}\", \"cycles\": {cycles}}}")
            }
            ObsEvent::InjectedSquash { pc, penalty } => {
                format!("{{\"pc\": \"{pc:#x}\", \"penalty\": {penalty}}}")
            }
            ObsEvent::TrialRetried { trial, attempt } => {
                format!("{{\"trial\": {trial}, \"attempt\": {attempt}}}")
            }
            ObsEvent::TrialQuarantined { trial }
            | ObsEvent::CheckpointAppended { trial }
            | ObsEvent::CheckpointResumed { trial } => {
                format!("{{\"trial\": {trial}}}")
            }
            ObsEvent::CheckpointTorn { records, bytes } => {
                format!("{{\"records\": {records}, \"bytes\": {bytes}}}")
            }
            ObsEvent::JobAdmitted { job }
            | ObsEvent::JobResumed { job }
            | ObsEvent::JobCompleted { job }
            | ObsEvent::JobCancelled { job } => {
                format!("{{\"job\": {job}}}")
            }
            ObsEvent::JobRejected { reason } => {
                format!("{{\"reason\": \"{reason}\"}}")
            }
            ObsEvent::StreamResumed { job, from_seq } => {
                format!("{{\"job\": {job}, \"from_seq\": {from_seq}}}")
            }
            ObsEvent::ConnWriteStalled { timeout_ms } | ObsEvent::ConnIdleReaped { timeout_ms } => {
                format!("{{\"timeout_ms\": {timeout_ms}}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_match_all() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::COUNT);
    }

    #[test]
    fn lifecycle_kinds_are_exactly_the_campaign_ones() {
        let lifecycle: Vec<_> = EventKind::ALL
            .iter()
            .filter(|k| k.is_campaign_lifecycle())
            .map(|k| k.name())
            .collect();
        assert_eq!(
            lifecycle,
            [
                "trial_retried",
                "trial_quarantined",
                "checkpoint_appended",
                "checkpoint_resumed"
            ]
        );
    }

    #[test]
    fn service_lifecycle_kinds_are_exactly_the_serve_ones() {
        let service: Vec<_> = EventKind::ALL
            .iter()
            .filter(|k| k.is_service_lifecycle())
            .map(|k| k.name())
            .collect();
        assert_eq!(
            service,
            [
                "checkpoint_torn",
                "job_admitted",
                "job_rejected",
                "job_resumed",
                "job_completed",
                "job_cancelled",
                "stream_resumed",
                "conn_write_stalled",
                "conn_idle_reaped"
            ]
        );
        // The two lifecycle families are disjoint.
        assert!(!EventKind::ALL
            .iter()
            .any(|k| k.is_campaign_lifecycle() && k.is_service_lifecycle()));
    }

    #[test]
    fn penalty_only_for_timing_events() {
        let squash = ObsEvent::Squash {
            pc: 1,
            cause: "wrong_target",
            penalty: 17,
        };
        assert_eq!(squash.penalty(), Some(17));
        let alloc = ObsEvent::BtbAllocate { pc: 1, target: 2 };
        assert_eq!(alloc.penalty(), None);
    }

    #[test]
    fn args_render_as_json_objects() {
        for event in [
            ObsEvent::BtbAllocate { pc: 16, target: 32 },
            ObsEvent::LbrRecord {
                from: 1,
                to: 2,
                elapsed: 3,
                mispredicted: true,
            },
            ObsEvent::BtbEvict {
                set: 4,
                way: 1,
                displaced: false,
            },
        ] {
            let args = event.args_json();
            assert!(args.starts_with('{') && args.ends_with('}'), "{args}");
        }
    }
}
