//! Deterministic, mergeable measurement aggregates.
//!
//! A [`Metrics`] value is the order-insensitive summary of one recorder
//! (or of many merged recorders): per-[`EventKind`](crate::EventKind)
//! counts, penalty cycle totals, and per-phase span statistics with
//! power-of-two cycle histograms. Every field is integer-valued and every
//! map iterates in key order, so [`Metrics::to_json`] is byte-stable —
//! the property the campaign determinism tests pin across thread counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::EventKind;

/// An attack phase a span can cover.
///
/// The fixed variants are the phases of the NV-Core measurement loop plus
/// the campaign's per-trial unit; [`Phase::Custom`] labels anything else
/// (e.g. NV-S traversal passes) with a static string.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Phase {
    /// Deriving quiet-case baselines ([`AttackerRig::calibrate`-shaped
    /// work]).
    Calibrate,
    /// Executing the snippet chain to plant BTB entries.
    Prime,
    /// The victim fragment executing between prime and probe.
    VictimFragment,
    /// A measurement pass reading the LBR back.
    Probe,
    /// One majority-vote iteration of robust probing.
    Vote,
    /// Recovery after a failed pass (re-prime + replay).
    Retry,
    /// One campaign trial, end to end.
    Trial,
    /// A quarantined trial's final (failed) attempt being written off by
    /// the supervised campaign engine.
    Quarantine,
    /// Checkpoint I/O: appending a completed trial or loading completed
    /// results during resume.
    Checkpoint,
    /// Admission control on the campaign server: quota/queue checks for
    /// one submission.
    Admission,
    /// One server job, end to end (admission to completion record).
    Job,
    /// The campaign server draining: admission closed, in-flight jobs
    /// finishing.
    Drain,
    /// Any other span, labelled by a static string.
    Custom(&'static str),
}

impl Phase {
    /// Stable name used as the metrics-JSON key and Chrome-trace span
    /// name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Calibrate => "calibrate",
            Phase::Prime => "prime",
            Phase::VictimFragment => "victim_fragment",
            Phase::Probe => "probe",
            Phase::Vote => "vote",
            Phase::Retry => "retry",
            Phase::Trial => "trial",
            Phase::Quarantine => "quarantine",
            Phase::Checkpoint => "checkpoint",
            Phase::Admission => "admission",
            Phase::Job => "job",
            Phase::Drain => "drain",
            Phase::Custom(name) => name,
        }
    }
}

/// Histogram bucket count: bucket `0` holds zero-cycle durations, bucket
/// `k >= 1` holds durations in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of cycle durations.
///
/// Buckets are deterministic functions of the duration alone, so merged
/// histograms are independent of merge order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl CycleHistogram {
    /// Bucket index for a duration: `0` for zero, else `1 + floor(log2)`.
    pub fn bucket_index(cycles: u64) -> usize {
        (64 - cycles.leading_zeros()) as usize
    }

    /// Records one duration.
    pub fn record(&mut self, cycles: u64) {
        self.buckets[Self::bucket_index(cycles)] += 1;
        self.count += 1;
        self.total += cycles;
        self.min = self.min.min(cycles);
        self.max = self.max.max(cycles);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest recorded duration (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded duration (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean duration (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total as f64 / self.count as f64)
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &CycleHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total += other.total;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .map(|(i, n)| format!("\"b{i}\": {n}"))
            .collect();
        format!(
            "{{\"count\": {}, \"total_cycles\": {}, \"min\": {}, \"max\": {}, \
             \"buckets\": {{{}}}}}",
            self.count,
            self.total,
            if self.count > 0 { self.min } else { 0 },
            self.max,
            buckets.join(", ")
        )
    }
}

/// Aggregated statistics of one phase's spans.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PhaseStats {
    /// Spans closed under this phase.
    pub count: u64,
    /// Sum of span durations in cycles.
    pub total_cycles: u64,
    /// Span-duration histogram.
    pub histogram: CycleHistogram,
}

impl PhaseStats {
    /// Records one closed span of `cycles` duration.
    pub fn record(&mut self, cycles: u64) {
        self.count += 1;
        self.total_cycles += cycles;
        self.histogram.record(cycles);
    }

    /// Adds another phase's statistics into this one.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        self.total_cycles += other.total_cycles;
        self.histogram.merge(&other.histogram);
    }
}

/// The deterministic aggregate of one or more recorders.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Metrics {
    /// Recorders merged in (one per campaign trial, typically).
    pub trials: u64,
    /// Event counts, indexed by [`EventKind::index`].
    pub event_counts: [u64; EventKind::COUNT],
    /// Cycles lost to squashes (including injected preemptions).
    pub squash_cycles: u64,
    /// Cycles lost to decode resteers.
    pub resteer_cycles: u64,
    /// Events dropped from ring buffers after hitting capacity (stats
    /// above still count them; only the event *records* were lost).
    pub dropped_events: u64,
    /// Per-phase span statistics, keyed by [`Phase::name`].
    pub phases: BTreeMap<&'static str, PhaseStats>,
}

impl Metrics {
    /// Count of one event kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.event_counts[kind.index()]
    }

    /// Statistics of one phase, if any span closed under it.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStats> {
        self.phases.get(phase.name())
    }

    /// Merges another aggregate into this one. Addition-only, so the
    /// result is independent of merge order — but campaign callers merge
    /// in trial-index order anyway, upholding the engine's contract.
    pub fn merge(&mut self, other: &Metrics) {
        self.trials += other.trials;
        for (mine, theirs) in self.event_counts.iter_mut().zip(&other.event_counts) {
            *mine += theirs;
        }
        self.squash_cycles += other.squash_cycles;
        self.resteer_cycles += other.resteer_cycles;
        self.dropped_events += other.dropped_events;
        for (name, stats) in &other.phases {
            self.phases.entry(name).or_default().merge(stats);
        }
    }

    /// Renders the aggregate as a canonical JSON object: integer-valued,
    /// key-sorted, byte-stable for equal inputs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"trials\": {}, \"events\": {{", self.trials);
        // µarch kinds always render (zeros included); campaign- and
        // service-lifecycle kinds render only when nonzero, so unsupervised
        // metrics are byte-identical to the pre-fault-tolerance format.
        let events: Vec<String> = EventKind::ALL
            .iter()
            .filter(|kind| {
                (!kind.is_campaign_lifecycle() && !kind.is_service_lifecycle())
                    || self.count(**kind) > 0
            })
            .map(|kind| format!("\"{}\": {}", kind.name(), self.count(*kind)))
            .collect();
        out.push_str(&events.join(", "));
        let _ = write!(
            out,
            "}}, \"squash_cycles\": {}, \"resteer_cycles\": {}, \"dropped_events\": {}, \
             \"phases\": {{",
            self.squash_cycles, self.resteer_cycles, self.dropped_events
        );
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(name, stats)| {
                format!(
                    "\"{name}\": {{\"count\": {}, \"total_cycles\": {}, \"histogram\": {}}}",
                    stats.count,
                    stats.total_cycles,
                    stats.histogram.to_json()
                )
            })
            .collect();
        out.push_str(&phases.join(", "));
        out.push_str("}}");
        out
    }

    /// Renders a human-readable summary: a phase table followed by the
    /// non-zero event counters.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>8} {:>12} {:>8} {:>8} {:>10}\n",
            "phase", "spans", "cycles", "min", "max", "mean"
        ));
        for (name, stats) in &self.phases {
            out.push_str(&format!(
                "{:<18} {:>8} {:>12} {:>8} {:>8} {:>10.1}\n",
                name,
                stats.count,
                stats.total_cycles,
                stats.histogram.min().unwrap_or(0),
                stats.histogram.max().unwrap_or(0),
                stats.histogram.mean().unwrap_or(0.0),
            ));
        }
        out.push_str(&format!("\n{:<18} {:>8}\n", "event", "count"));
        for kind in EventKind::ALL {
            let count = self.count(kind);
            if count > 0 {
                out.push_str(&format!("{:<18} {:>8}\n", kind.name(), count));
            }
        }
        if self.squash_cycles > 0 || self.resteer_cycles > 0 {
            out.push_str(&format!(
                "\nsquash cycles {}, resteer cycles {}\n",
                self.squash_cycles, self.resteer_cycles
            ));
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "({} event records dropped at ring capacity; counters unaffected)\n",
                self.dropped_events
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(CycleHistogram::bucket_index(0), 0);
        assert_eq!(CycleHistogram::bucket_index(1), 1);
        assert_eq!(CycleHistogram::bucket_index(2), 2);
        assert_eq!(CycleHistogram::bucket_index(3), 2);
        assert_eq!(CycleHistogram::bucket_index(4), 3);
        assert_eq!(CycleHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats_and_merge() {
        let mut a = CycleHistogram::default();
        a.record(4);
        a.record(10);
        let mut b = CycleHistogram::default();
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 15);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(10));
        assert_eq!(a.mean(), Some(5.0));
        let empty = CycleHistogram::default();
        assert_eq!(empty.min(), None);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn metrics_merge_is_order_insensitive() {
        let mut a = Metrics {
            trials: 1,
            ..Metrics::default()
        };
        a.event_counts[EventKind::Squash.index()] = 3;
        a.phases.entry("probe").or_default().record(40);
        let mut b = Metrics {
            trials: 1,
            ..Metrics::default()
        };
        b.event_counts[EventKind::Squash.index()] = 2;
        b.phases.entry("probe").or_default().record(10);
        b.phases.entry("prime").or_default().record(5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.trials, 2);
        assert_eq!(ab.count(EventKind::Squash), 5);
        assert_eq!(ab.phase(Phase::Probe).unwrap().count, 2);
    }

    #[test]
    fn json_is_byte_stable() {
        let build = || {
            let mut m = Metrics {
                trials: 2,
                ..Metrics::default()
            };
            m.event_counts[EventKind::BtbAllocate.index()] = 7;
            m.phases.entry("calibrate").or_default().record(100);
            m.phases.entry("probe").or_default().record(12);
            m
        };
        assert_eq!(build().to_json(), build().to_json());
        assert!(build().to_json().contains("\"btb_allocate\": 7"));
    }

    #[test]
    fn lifecycle_counters_render_only_when_nonzero() {
        let quiet = Metrics::default();
        let json = quiet.to_json();
        assert!(!json.contains("trial_retried"), "{json}");
        assert!(!json.contains("checkpoint_appended"), "{json}");
        assert!(!json.contains("checkpoint_torn"), "{json}");
        assert!(!json.contains("job_admitted"), "{json}");
        assert!(json.contains("\"btb_allocate\": 0"), "{json}");

        let mut served = Metrics::default();
        served.event_counts[EventKind::JobAdmitted.index()] = 3;
        served.event_counts[EventKind::CheckpointTorn.index()] = 1;
        let json = served.to_json();
        assert!(json.contains("\"job_admitted\": 3"), "{json}");
        assert!(json.contains("\"checkpoint_torn\": 1"), "{json}");
        assert!(!json.contains("job_rejected"), "{json}");

        let mut supervised = Metrics::default();
        supervised.event_counts[EventKind::TrialRetried.index()] = 2;
        supervised.event_counts[EventKind::CheckpointResumed.index()] = 5;
        let json = supervised.to_json();
        assert!(json.contains("\"trial_retried\": 2"), "{json}");
        assert!(json.contains("\"checkpoint_resumed\": 5"), "{json}");
        assert!(!json.contains("trial_quarantined"), "{json}");
    }

    #[test]
    fn summary_table_lists_phases_and_events() {
        let mut m = Metrics::default();
        m.event_counts[EventKind::LbrRecord.index()] = 4;
        m.phases.entry("prime").or_default().record(20);
        let table = m.summary_table();
        assert!(table.contains("prime"));
        assert!(table.contains("lbr_record"));
        assert!(!table.contains("btb_evict"), "zero counters are omitted");
    }
}
