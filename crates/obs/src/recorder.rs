//! The per-context event recorder.
//!
//! A [`Recorder`] is attached to one execution context (a `Core`, one
//! campaign trial) and collects three things as the instrumented code
//! reports in: a bounded ring of timestamped events, a tree of closed
//! phase spans, and running integer aggregates (counters, penalty cycle
//! totals, per-phase histograms). The aggregates are never dropped —
//! only the event/span *records* are bounded — so [`Recorder::metrics`]
//! is exact regardless of ring capacity.
//!
//! A disabled recorder ([`Recorder::disabled`] or after
//! [`Recorder::set_enabled`]`(false)`) accepts every call and does
//! nothing, letting callers benchmark the instrumented code paths with
//! recording compiled in but switched off.

use std::collections::{BTreeMap, VecDeque};

use crate::event::ObsEvent;
use crate::metrics::{Metrics, Phase, PhaseStats};

/// Default bound on retained event records.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Default bound on retained closed-span records.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 14;

/// One event with the cycle at which it was reported.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimedEvent {
    /// Reporting context's cycle counter at emission time.
    pub cycle: u64,
    /// The event itself.
    pub event: ObsEvent,
}

/// One closed phase span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// The phase the span covered.
    pub phase: Phase,
    /// Cycle at which the span opened.
    pub start: u64,
    /// Cycle at which the span closed (`>= start`).
    pub end: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
}

impl SpanRecord {
    /// Span duration in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// Collects events, spans and aggregates for one execution context.
#[derive(Clone, Debug)]
pub struct Recorder {
    enabled: bool,
    events: VecDeque<TimedEvent>,
    event_capacity: usize,
    dropped_events: u64,
    open: Vec<(Phase, u64)>,
    spans: Vec<SpanRecord>,
    span_capacity: usize,
    dropped_spans: u64,
    counters: [u64; crate::EventKind::COUNT],
    squash_cycles: u64,
    resteer_cycles: u64,
    phase_stats: BTreeMap<&'static str, PhaseStats>,
    last_cycle: u64,
}

impl Recorder {
    /// An enabled recorder with the given event-ring capacity (spans use
    /// [`DEFAULT_SPAN_CAPACITY`]).
    pub fn new(event_capacity: usize) -> Self {
        Recorder {
            enabled: true,
            events: VecDeque::new(),
            event_capacity,
            dropped_events: 0,
            open: Vec::new(),
            spans: Vec::new(),
            span_capacity: DEFAULT_SPAN_CAPACITY,
            dropped_spans: 0,
            counters: [0; crate::EventKind::COUNT],
            squash_cycles: 0,
            resteer_cycles: 0,
            phase_stats: BTreeMap::new(),
            last_cycle: 0,
        }
    }

    /// An attached-but-disabled recorder: every call is accepted and
    /// ignored. Used to measure the disabled-mode overhead of the
    /// instrumentation hooks themselves.
    pub fn disabled() -> Self {
        let mut recorder = Recorder::new(0);
        recorder.enabled = false;
        recorder
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Switches recording on or off. Already-collected data is kept.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Reports one event at the given cycle.
    pub fn event(&mut self, cycle: u64, event: ObsEvent) {
        if !self.enabled {
            return;
        }
        self.last_cycle = self.last_cycle.max(cycle);
        self.counters[event.kind().index()] += 1;
        if let Some(penalty) = event.penalty() {
            match event {
                ObsEvent::Resteer { .. } => self.resteer_cycles += penalty,
                _ => self.squash_cycles += penalty,
            }
        }
        if self.event_capacity == 0 {
            self.dropped_events += 1;
            return;
        }
        if self.events.len() == self.event_capacity {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(TimedEvent { cycle, event });
    }

    /// Opens a span for `phase` at the given cycle. Spans nest; close
    /// them in LIFO order with [`Recorder::exit`].
    pub fn enter(&mut self, phase: Phase, cycle: u64) {
        if !self.enabled {
            return;
        }
        self.last_cycle = self.last_cycle.max(cycle);
        self.open.push((phase, cycle));
    }

    /// Closes the innermost open span for `phase` at the given cycle and
    /// folds its duration into the per-phase statistics.
    ///
    /// Mismatched exits (no open span for `phase`) are ignored rather
    /// than panicking: the recorder is diagnostic machinery and must not
    /// alter control flow of the code it observes.
    pub fn exit(&mut self, phase: Phase, cycle: u64) {
        if !self.enabled {
            return;
        }
        self.last_cycle = self.last_cycle.max(cycle);
        let Some(pos) = self.open.iter().rposition(|(p, _)| *p == phase) else {
            return;
        };
        let (_, start) = self.open.remove(pos);
        let depth = pos as u32;
        let end = cycle.max(start);
        self.phase_stats
            .entry(phase.name())
            .or_default()
            .record(end - start);
        if self.spans.len() < self.span_capacity {
            self.spans.push(SpanRecord {
                phase,
                start,
                end,
                depth,
            });
        } else {
            self.dropped_spans += 1;
        }
    }

    /// Closes every still-open span at the last observed cycle. Call at
    /// the end of a trial so truncated phases still aggregate.
    pub fn finish(&mut self) {
        while let Some((phase, _)) = self.open.last().copied() {
            self.exit(phase, self.last_cycle);
        }
    }

    /// Number of spans currently open.
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Retained event records, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Retained closed-span records, in close order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Event records dropped at ring capacity (aggregates still counted
    /// them).
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// The exact aggregate of everything reported so far, independent of
    /// ring capacity. `trials` is 1 so campaign merges count recorders.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            trials: 1,
            event_counts: self.counters,
            squash_cycles: self.squash_cycles,
            resteer_cycles: self.resteer_cycles,
            dropped_events: self.dropped_events + self.dropped_spans,
            phases: self.phase_stats.clone(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_EVENT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    #[test]
    fn disabled_recorder_collects_nothing() {
        let mut r = Recorder::disabled();
        r.event(5, ObsEvent::BtbAllocate { pc: 1, target: 2 });
        r.enter(Phase::Probe, 5);
        r.exit(Phase::Probe, 9);
        let m = r.metrics();
        assert_eq!(m.count(EventKind::BtbAllocate), 0);
        assert!(m.phases.is_empty());
        assert_eq!(r.events().count(), 0);
    }

    #[test]
    fn ring_drops_oldest_but_counts_all() {
        let mut r = Recorder::new(2);
        for cycle in 0..5 {
            r.event(
                cycle,
                ObsEvent::BtbAllocate {
                    pc: cycle,
                    target: 0,
                },
            );
        }
        assert_eq!(r.events().count(), 2);
        assert_eq!(r.events().next().unwrap().cycle, 3);
        assert_eq!(r.dropped_events(), 3);
        assert_eq!(r.metrics().count(EventKind::BtbAllocate), 5);
        assert_eq!(r.metrics().dropped_events, 3);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let mut r = Recorder::new(16);
        r.enter(Phase::Trial, 0);
        r.enter(Phase::Prime, 10);
        r.exit(Phase::Prime, 25);
        r.enter(Phase::Probe, 30);
        r.exit(Phase::Probe, 50);
        r.exit(Phase::Trial, 60);
        let spans = r.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].phase, Phase::Prime);
        assert_eq!(spans[0].cycles(), 15);
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[2].phase, Phase::Trial);
        assert_eq!(spans[2].depth, 0);
        let m = r.metrics();
        assert_eq!(m.phase(Phase::Trial).unwrap().total_cycles, 60);
        assert_eq!(m.phase(Phase::Probe).unwrap().count, 1);
    }

    #[test]
    fn mismatched_exit_is_ignored() {
        let mut r = Recorder::new(4);
        r.exit(Phase::Vote, 100);
        assert!(r.spans().is_empty());
        assert!(r.metrics().phases.is_empty());
    }

    #[test]
    fn finish_closes_open_spans_at_last_cycle() {
        let mut r = Recorder::new(4);
        r.enter(Phase::Trial, 0);
        r.enter(Phase::Retry, 40);
        r.event(
            90,
            ObsEvent::Squash {
                pc: 0,
                cause: "wrong_target",
                penalty: 20,
            },
        );
        r.finish();
        assert_eq!(r.open_spans(), 0);
        let m = r.metrics();
        assert_eq!(m.phase(Phase::Retry).unwrap().total_cycles, 50);
        assert_eq!(m.phase(Phase::Trial).unwrap().total_cycles, 90);
        assert_eq!(m.squash_cycles, 20);
    }

    #[test]
    fn penalties_split_squash_and_resteer() {
        let mut r = Recorder::new(8);
        r.event(
            1,
            ObsEvent::Squash {
                pc: 0,
                cause: "false_hit",
                penalty: 20,
            },
        );
        r.event(
            2,
            ObsEvent::Resteer {
                pc: 4,
                target: 64,
                penalty: 6,
            },
        );
        r.event(3, ObsEvent::InjectedSquash { pc: 8, penalty: 20 });
        let m = r.metrics();
        assert_eq!(m.squash_cycles, 40);
        assert_eq!(m.resteer_cycles, 6);
    }
}
