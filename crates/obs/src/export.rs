//! Chrome trace-event export.
//!
//! Renders recorders as a Chrome trace-event JSON document loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. Spans
//! become `"X"` (complete) events and point events become `"i"`
//! (instant) events; one simulated cycle maps to one microsecond of
//! trace time. Each recorder renders on its own thread track (`tid`),
//! so a campaign's trials appear as parallel lanes.

use std::fmt::Write as _;

use crate::recorder::Recorder;

/// Process id used for all tracks.
const PID: u32 = 1;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn push_track(out: &mut Vec<String>, tid: u32, label: &str, recorder: &Recorder) {
    out.push(format!(
        "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {PID}, \"tid\": {tid}, \
         \"args\": {{\"name\": \"{}\"}}}}",
        escape(label)
    ));
    for span in recorder.spans() {
        out.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": {PID}, \"tid\": {tid}, \
             \"ts\": {}, \"dur\": {}, \"cat\": \"phase\"}}",
            escape(span.phase.name()),
            span.start,
            span.cycles()
        ));
    }
    for timed in recorder.events() {
        out.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"i\", \"pid\": {PID}, \"tid\": {tid}, \
             \"ts\": {}, \"s\": \"t\", \"cat\": \"event\", \"args\": {}}}",
            timed.event.kind().name(),
            timed.cycle,
            timed.event.args_json()
        ));
    }
}

/// Renders labelled recorders as one Chrome trace-event JSON document.
///
/// Each `(tid, label, recorder)` triple becomes its own named thread
/// track. Timestamps are the recorders' cycle counters interpreted as
/// microseconds.
pub fn chrome_trace(tracks: &[(u32, &str, &Recorder)]) -> String {
    let mut events = Vec::new();
    for (tid, label, recorder) in tracks {
        push_track(&mut events, *tid, label, recorder);
    }
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, event) in events.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {event}{}",
            if i + 1 < events.len() { "," } else { "" }
        );
    }
    out.push_str("]}\n");
    out
}

/// Convenience wrapper for a single recorder on track 0.
pub fn chrome_trace_single(label: &str, recorder: &Recorder) -> String {
    chrome_trace(&[(0, label, recorder)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Phase;
    use crate::ObsEvent;

    fn sample() -> Recorder {
        let mut r = Recorder::new(16);
        r.enter(Phase::Trial, 0);
        r.enter(Phase::Probe, 10);
        r.event(
            12,
            ObsEvent::LbrRecord {
                from: 0x40,
                to: 0x80,
                elapsed: 9,
                mispredicted: false,
            },
        );
        r.exit(Phase::Probe, 30);
        r.exit(Phase::Trial, 35);
        r
    }

    #[test]
    fn trace_contains_spans_instants_and_track_name() {
        let trace = chrome_trace_single("trial 0", &sample());
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ph\": \"i\""));
        assert!(trace.contains("\"name\": \"probe\""));
        assert!(trace.contains("\"name\": \"lbr_record\""));
        assert!(trace.contains("trial 0"));
    }

    #[test]
    fn multi_track_uses_distinct_tids() {
        let a = sample();
        let b = sample();
        let trace = chrome_trace(&[(0, "trial 0", &a), (1, "trial 1", &b)]);
        assert!(trace.contains("\"tid\": 0"));
        assert!(trace.contains("\"tid\": 1"));
    }

    #[test]
    fn trace_is_deterministic() {
        let r = sample();
        assert_eq!(chrome_trace_single("t", &r), chrome_trace_single("t", &r));
    }
}
