//! Use case 2 (§6, §7.3): fingerprinting *private* enclave code.
//!
//! The enclave's bytes are unreadable (SGX PCL); the supervisor-level
//! attacker single-steps it (SGX-Step), drives the controlled channel for
//! page numbers, binary-searches prediction windows for byte-granular PCs
//! (Fig. 10), slices the trace at call/ret boundaries (§6.4 step 1) and
//! matches the normalized offset sets against reference functions
//! (§6.4 step 2).
//!
//! Run with: `cargo run --release --example fingerprint_enclave`

use nightvision::fingerprint::{Fingerprinter, ReferenceFunction};
use nightvision::{trace, NvSupervisor};
use nv_corpus::{generate, CorpusConfig};
use nv_isa::VirtAddr;
use nv_os::Enclave;
use nv_uarch::{Core, UarchConfig};
use nv_victims::compile::{compile_gcd, CompileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The attacker prepared reference fingerprints offline (§6.4): static
    // PC sets of suspicious functions from public crypto libraries.
    let gcd_image = compile_gcd(
        &CompileOptions::default(),
        VirtAddr::new(0x40_0000),
        0xdead_beef,
        65537,
    )?;
    let mut fingerprinter = Fingerprinter::new();
    fingerprinter.add_reference(ReferenceFunction::new(
        "mbedtls_mpi_gcd",
        gcd_image.static_pc_offsets(),
    ));
    // Plus a pile of decoys from the corpus.
    let corpus = generate(&CorpusConfig {
        functions: 500,
        ..CorpusConfig::default()
    });
    for f in corpus.functions().iter().take(50) {
        fingerprinter.add_reference(ReferenceFunction::new(
            format!("decoy#{}", f.id()),
            f.static_offsets().iter().copied(),
        ));
    }
    println!(
        "{} reference fingerprints prepared",
        fingerprinter.references().len()
    );

    // The *private* enclave: the attacker never reads its code.
    let mut enclave = Enclave::new(gcd_image.program().clone());
    let mut core = Core::new(UarchConfig::default());
    println!(
        "enclave loaded: {} code page(s), contents opaque",
        enclave.code_pages().len()
    );

    // Full NV-S extraction.
    let extracted = NvSupervisor::default().extract_trace(&mut enclave, &mut core)?;
    println!(
        "NV-S extracted {} dynamic retirement units ({} resolved PCs)",
        extracted.len(),
        extracted.pcs().len()
    );

    // Slice + normalize + match.
    let functions = trace::slice_functions(
        &extracted
            .steps()
            .iter()
            .filter_map(|s| s.pc.map(|pc| (pc, s.data_access)))
            .collect::<Vec<_>>(),
    );
    println!(
        "sliced {} function invocation(s) from the trace",
        functions.len()
    );
    for function in &functions {
        let ranked = fingerprinter.rank(&function.offset_set());
        println!(
            "\nvictim function at {} ({} dynamic PCs):",
            function.entry,
            function.len()
        );
        for m in ranked.iter().take(5) {
            println!("  {:<20} {:>5.1}%", m.name, m.score * 100.0);
        }
        assert_eq!(
            ranked[0].name, "mbedtls_mpi_gcd",
            "the true function must rank first"
        );
    }
    println!("\nverdict: the private enclave runs mbedtls_mpi_gcd — code privacy broken.");
    Ok(())
}
