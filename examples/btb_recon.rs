//! Reverse-engineering walkthrough: reproduces the paper's two §2
//! experiments interactively, printing the same series as Figures 2
//! and 4 and deriving the takeaways from the data.
//!
//! Run with: `cargo run --example btb_recon`

use nv_isa::VirtAddr;
use nv_uarch::{BranchKind, Btb, BtbGeometry, CpuGeneration};

fn main() {
    println!("== Takeaway 2: range-query lookups ==\n");
    let mut btb = Btb::new(BtbGeometry::default());
    let branch = VirtAddr::new(0x40_001e);
    btb.allocate(
        branch.offset(1),
        VirtAddr::new(0x40_0100),
        BranchKind::DirectJump,
    );
    println!("allocated an entry for a 2-byte jump at [0x1e, 0x1f] (end-byte indexed)");
    for offset in [0x00u64, 0x08, 0x10, 0x1f, 0x1e] {
        let pc = VirtAddr::new(0x40_0000 + offset);
        let hit = btb.lookup(pc).is_some();
        println!(
            "  lookup at block offset {offset:#04x}: {}",
            if hit { "HIT" } else { "miss" }
        );
    }
    println!("  -> a lookup hits any entry at an offset >= the fetch PC's offset\n");

    println!("== Takeaway 1: false-hit deallocation ==\n");
    let mut btb = Btb::new(BtbGeometry::default());
    let victim_jump_end = VirtAddr::new(0x40_0011);
    btb.allocate(
        victim_jump_end,
        VirtAddr::new(0x40_0100),
        BranchKind::DirectJump,
    );
    let alias = VirtAddr::new(0x40_0011 + (1 << 33));
    println!("an instruction 8 GiB away shares the entry's low 33 bits:");
    println!(
        "  aliases under SkyLake-class truncation: {}",
        victim_jump_end.aliases(alias, 33)
    );
    let hit = btb.lookup(alias).expect("aliased lookup hits");
    println!(
        "  the aliased lookup produces a (false) hit at {}",
        hit.branch_pc
    );
    btb.deallocate(hit.set, hit.way);
    println!("  decode sees a non-branch there -> the core deallocates the entry");
    println!("  entry gone: {}\n", btb.lookup(victim_jump_end).is_none());

    println!("== tag cutoffs across generations (footnote 1) ==\n");
    for generation in CpuGeneration::all() {
        let cutoff = generation.tag_cutoff_bit();
        println!(
            "  {generation:?}: ignores PC bits >= {cutoff} (aliasing distance {} GiB)",
            (1u64 << cutoff) >> 30
        );
    }

    println!("\n== Figure 2 series (Experiment 1) ==\n");
    println!("  F2    with_F2  baseline");
    for f2 in 0..=0x16u64 {
        let orange = nv_bench_experiments::experiment1_elapsed(0x10, f2, 0x1c, true);
        let blue = nv_bench_experiments::experiment1_elapsed(0x10, f2, 0x1c, false);
        let marker = if orange > blue {
            "  <- collision (F2 < F1+2)"
        } else {
            ""
        };
        println!("  {f2:#04x}  {orange:>7}  {blue:>8}{marker}");
    }

    println!("\n== Figure 4 series (Experiment 2) ==\n");
    println!("  F1    with_F2  baseline");
    for f1 in 0..=0x1eu64 {
        let orange = nv_bench_experiments::experiment2_elapsed(f1, 0x08, true);
        let blue = nv_bench_experiments::experiment2_elapsed(f1, 0x08, false);
        let marker = if orange > blue {
            "  <- mispredict (F1 < F2+2)"
        } else {
            ""
        };
        println!("  {f1:#04x}  {orange:>7}  {blue:>8}{marker}");
    }
}

/// Local copies of the experiment drivers (kept self-contained so the
/// example only depends on the public crates).
mod nv_bench_experiments {
    use nv_isa::{Assembler, Program, Reg, VirtAddr};
    use nv_uarch::{Core, Machine, RunExit, UarchConfig};

    const B1: u64 = 0x40_0000;
    const B2: u64 = B1 + (1 << 33);
    const DRIVER: u64 = 0x10_0000;

    pub fn experiment1_elapsed(f1: u64, f2: u64, l2: u64, call_f2: bool) -> u64 {
        let program = experiment1_program(f1, f2, l2);
        let l1 = program.symbol("L1").unwrap();
        let (d1, d2, d3) = (
            program.symbol("drv1").unwrap(),
            program.symbol("drv2").unwrap(),
            program.symbol("drv3").unwrap(),
        );
        let mut machine = Machine::new(program);
        let mut core = Core::new(UarchConfig::default());
        machine.state_mut().set_pc(d1);
        core.run(&mut machine, 100);
        if call_f2 {
            machine.state_mut().set_pc(d2);
            core.reset_frontend();
            core.run(&mut machine, 100);
        }
        core.lbr_mut().clear();
        machine.state_mut().set_pc(d3);
        core.reset_frontend();
        assert_eq!(core.run(&mut machine, 100), RunExit::Syscall(3));
        core.lbr().find_from(l1).unwrap().elapsed
    }

    fn experiment1_program(f1: u64, f2: u64, l2: u64) -> Program {
        let mut asm = Assembler::new(VirtAddr::new(DRIVER));
        asm.label("drv1");
        asm.call("F1");
        asm.syscall(1);
        asm.label("drv2");
        asm.mov_label(Reg::R9, "F2");
        asm.call_ind(Reg::R9);
        asm.syscall(2);
        asm.label("drv3");
        asm.call("F1");
        asm.syscall(3);
        asm.org(VirtAddr::new(B1 + f1)).unwrap();
        asm.label("F1");
        asm.jmp8("L1");
        asm.pad_to(VirtAddr::new(B1 + f1 + 8));
        asm.label("L1");
        asm.ret();
        asm.org(VirtAddr::new(B2 + f2)).unwrap();
        asm.label("F2");
        asm.pad_to(VirtAddr::new(B2 + l2));
        asm.label("L2");
        asm.ret();
        asm.finish().unwrap()
    }

    pub fn experiment2_elapsed(f1: u64, f2: u64, call_f2: bool) -> u64 {
        let program = experiment2_program(f1, f2);
        let l1 = program.symbol("L1").unwrap();
        let (dj, df2, df1) = (
            program.symbol("drv_j1").unwrap(),
            program.symbol("drv_f2").unwrap(),
            program.symbol("drv_f1").unwrap(),
        );
        let mut machine = Machine::new(program);
        let mut core = Core::new(UarchConfig::default());
        machine.state_mut().set_pc(dj);
        core.run(&mut machine, 100);
        if call_f2 {
            machine.state_mut().set_pc(df2);
            core.reset_frontend();
            core.run(&mut machine, 100);
        }
        core.lbr_mut().clear();
        machine.state_mut().set_pc(df1);
        core.reset_frontend();
        assert_eq!(core.run(&mut machine, 100), RunExit::Syscall(3));
        let records: Vec<_> = core.lbr().iter().collect();
        let call_idx = records.iter().position(|r| r.from == df1).unwrap();
        let ret_idx = records.iter().position(|r| r.from == l1).unwrap();
        records[call_idx + 1..=ret_idx]
            .iter()
            .map(|r| r.elapsed)
            .sum()
    }

    fn experiment2_program(f1: u64, f2: u64) -> Program {
        let mut asm = Assembler::new(VirtAddr::new(DRIVER));
        asm.label("drv_j1");
        asm.call("J1");
        asm.syscall(1);
        asm.label("drv_f2");
        asm.mov_label(Reg::R9, "F2");
        asm.call_ind(Reg::R9);
        asm.syscall(2);
        asm.label("drv_f1");
        asm.call("F1");
        asm.syscall(3);
        asm.org(VirtAddr::new(B1 + f1)).unwrap();
        asm.label("F1");
        asm.pad_to(VirtAddr::new(B1 + 0x1e));
        asm.label("J1");
        asm.jmp8("L1");
        asm.label("L1");
        asm.ret();
        asm.org(VirtAddr::new(B2 + f2)).unwrap();
        asm.label("F2");
        asm.jmp8("L2");
        asm.pad_to(VirtAddr::new(B2 + 0x20));
        asm.label("L2");
        asm.ret();
        asm.finish().unwrap()
    }
}
