//! Use case 1 (§5, §7.2): leaking RSA key material through the
//! *perfectly balanced*, 16-byte-aligned branch of the mbedTLS-style GCD.
//!
//! The victim is hardened against every prior control-flow attack:
//! * branch balancing (identical instruction counts/types/lengths),
//! * `-falign-jumps=16` (defeats Frontal),
//! * optionally CFR (defeats branch-predictor attacks),
//! * with IBRS/IBPB barriers active (defeats Spectre-v2-style probing).
//!
//! NightVision-User recovers every branch direction anyway.
//!
//! Run with: `cargo run --example control_flow_leak`

use nightvision::{NoiseModel, NvUser};
use nv_os::System;
use nv_uarch::UarchConfig;
use nv_victims::{GcdVictim, RsaKeygen, VictimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One RSA key-generation run: gcd(secret, 65537).
    let run = RsaKeygen::new(7).next_run();
    println!(
        "victim: gcd({:#x}, {}) — {} balanced-branch iterations",
        run.secret,
        run.public,
        run.trace.directions.len()
    );

    for (name, config) in [
        ("balanced + align16", VictimConfig::paper_hardened()),
        ("balanced + align16 + CFR", VictimConfig::with_cfr(0xc0ffee)),
    ] {
        let victim = GcdVictim::build(run.secret, run.public, &config)?;
        let mut system = System::new(UarchConfig::default());
        let pid = system.spawn(victim.program().clone());

        let mut attacker = NvUser::for_victim(&victim, NoiseModel::none())?;
        println!("\n[{name}] monitoring windows: {:?}", attacker.pws());
        let readings = attacker.leak_directions(&mut system, pid, 100_000)?;
        let inferred = NvUser::infer_directions(&readings);

        let truth = victim.directions();
        let accuracy = NvUser::accuracy(&inferred, truth);
        let rendered: String = inferred
            .iter()
            .map(|&d| if d { 'T' } else { 'E' })
            .collect();
        println!("leaked directions: {rendered}");
        println!("accuracy vs ground truth: {:.1}%", accuracy * 100.0);
        assert_eq!(inferred, truth, "noise-free run must be exact");
    }

    // The only mitigation that holds: data-oblivious code (§8.2).
    let oblivious = GcdVictim::build(run.secret, run.public, &VictimConfig::data_oblivious())?;
    match NvUser::for_victim(&oblivious, NoiseModel::none()) {
        Err(err) => println!("\n[data-oblivious] attack cannot even be constructed: {err}"),
        Ok(_) => println!("\n[data-oblivious] unexpectedly attackable!"),
    }
    Ok(())
}
