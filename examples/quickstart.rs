//! Quickstart: the NightVision channel in ~60 lines.
//!
//! 1. Build a victim whose code executes (or not) inside a chosen range.
//! 2. Build an attacker rig monitoring that range from 8 GiB away.
//! 3. Prime, let the victim run, probe — and read the answer.
//!
//! Run with: `cargo run --example quickstart`

use nightvision::{AttackerRig, PwSpec};
use nv_isa::{Assembler, VirtAddr};
use nv_uarch::{Core, Machine, UarchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "victim": straight-line code at 0x40_1000 — no branches at all.
    // Classic BTB attacks see nothing here; NightVision does.
    let mut asm = Assembler::new(VirtAddr::new(0x40_1000));
    for _ in 0..12 {
        asm.nop();
    }
    asm.halt();
    let mut victim = Machine::new(asm.finish()?);

    // One shared core = one shared BTB.
    let mut core = Core::new(UarchConfig::default());

    // Monitor the 16-byte range [0x40_1000, 0x40_1010). The rig's snippet
    // lives at +8 GiB, where the BTB's truncated tags cannot tell the
    // difference (Takeaway 2 of the paper).
    let window = PwSpec::new(VirtAddr::new(0x40_1000), 16)?;
    let mut rig = AttackerRig::new(vec![window])?;
    rig.calibrate(&mut core)?;

    // Quiet probe: nothing ran, nothing matched.
    assert_eq!(rig.probe(&mut core)?, vec![false]);
    println!("quiet probe          -> no match (as expected)");

    // The victim executes its nops: each one that aliases the primed
    // entry false-hits it, and the entry is deallocated (Takeaway 1).
    core.reset_frontend();
    core.run(&mut victim, 100);
    let matched = rig.probe(&mut core)?[0];
    println!("probe after victim   -> match = {matched}");
    assert!(matched, "the victim's nops must leak their addresses");

    // And the probe re-primed the channel for the next measurement.
    assert_eq!(rig.probe(&mut core)?, vec![false]);
    println!("follow-up probe      -> no match (channel re-armed)");

    println!("\nNightVision observed *non-control-transfer* instructions through the BTB.");
    Ok(())
}
