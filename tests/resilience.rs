//! Resumability contract of the supervised campaign engine: for *every*
//! interruption point `k`, killing the campaign after `k` checkpointed
//! trials and resuming from the surviving file must reproduce the
//! uninterrupted output byte-for-byte — at 1, 2 and 8 worker threads.
//!
//! The always-on sweep keeps the trial function cheap (pure rng work) so
//! the full `(k, threads)` grid stays fast; the `proptest` feature widens
//! the grid with nv-rand-driven campaign shapes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use nightvision::campaign::{Campaign, Trial};
use nightvision::checkpoint::fnv1a64;
use nightvision::{AttackError, CampaignCheckpoint, TrialOutcome};
use nv_rand::Rng;

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "nv_resume_sweep_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Cheap deterministic trial: a short walk on the trial's own stream.
fn rng_trial(trial: &mut Trial) -> Result<u64, AttackError> {
    let mut acc = trial.index as u64;
    for _ in 0..8 {
        acc = acc.wrapping_mul(0x9e37).wrapping_add(trial.rng.next_u64());
    }
    Ok(acc)
}

fn encode(v: &u64) -> String {
    v.to_string()
}

fn decode(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// Runs a *serial* copy of `campaign` against a fresh checkpoint at
/// `path`, panicking (the stand-in for SIGKILL) once exactly `kill_at`
/// trials have completed. The checkpoint file survives the unwind
/// exactly like it would survive a process death. The kill runs on one
/// worker so the prefix is exact — with parallel workers the in-flight
/// trials race the kill counter and the surviving prefix would be
/// scheduling-dependent (covered separately by
/// `parallel_kill_still_resumes_identically`).
fn kill_after(campaign: &Campaign, path: &PathBuf, kill_at: usize, trials: usize) {
    let serial = campaign.threads(1);
    let key = serial.checkpoint_key(fnv1a64(b"resume sweep"));
    let checkpoint = CampaignCheckpoint::open(path, key).expect("open checkpoint");
    let completed = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        serial.resume(&checkpoint, encode, decode, |mut trial| {
            if completed.load(Ordering::SeqCst) >= kill_at {
                panic!("simulated SIGKILL");
            }
            let value = rng_trial(&mut trial)?;
            completed.fetch_add(1, Ordering::SeqCst);
            Ok(value)
        })
    }));
    assert!(
        result.is_err() || kill_at >= trials,
        "the kill must fire unless k covers the whole campaign"
    );
}

/// The sweep itself: every `k` in `0..=trials`, each at 1/2/8 threads.
fn sweep(trials: usize, master_seed: u64) {
    let baseline: Vec<TrialOutcome<u64>> = Campaign::new(trials)
        .master_seed(master_seed)
        .run_supervised(|mut t| rng_trial(&mut t));
    for kill_at in 0..=trials {
        for threads in [1usize, 2, 8] {
            let campaign = Campaign::new(trials)
                .master_seed(master_seed)
                .threads(threads);
            let path = scratch(&format!("s{master_seed:x}_k{kill_at}_t{threads}"));
            kill_after(&campaign, &path, kill_at, trials);
            let key = campaign.checkpoint_key(fnv1a64(b"resume sweep"));
            let checkpoint = CampaignCheckpoint::open(&path, key).expect("reopen after kill");
            assert!(
                checkpoint.completed_trials() >= kill_at.min(trials),
                "checkpoint lost completed trials at k={kill_at}, threads={threads}"
            );
            let resumed = campaign.resume(&checkpoint, encode, decode, |mut t| rng_trial(&mut t));
            assert_eq!(
                resumed, baseline,
                "resume diverged at k={kill_at}, threads={threads}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn resume_from_every_prefix_is_identical() {
    sweep(9, 0x5eed_0001);
}

#[test]
fn resume_tolerates_a_corrupt_tail_at_every_prefix() {
    use std::io::Write;
    let trials = 6;
    let campaign = Campaign::new(trials).master_seed(0x5eed_0002).threads(2);
    let baseline = Campaign::new(trials)
        .master_seed(0x5eed_0002)
        .run_supervised(|mut t| rng_trial(&mut t));
    for kill_at in 1..trials {
        let path = scratch(&format!("corrupt_k{kill_at}"));
        kill_after(&campaign, &path, kill_at, trials);
        {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("append garbage");
            file.write_all(b"{\"len\": 3, \"crc\": 42, \"body\": {\"trial\"")
                .expect("torn record");
        }
        let key = campaign.checkpoint_key(fnv1a64(b"resume sweep"));
        let checkpoint = CampaignCheckpoint::open(&path, key).expect("damaged file must open");
        assert!(checkpoint.dropped_records() >= 1);
        let resumed = campaign.resume(&checkpoint, encode, decode, |mut t| rng_trial(&mut t));
        assert_eq!(
            resumed, baseline,
            "corrupt tail broke resume at k={kill_at}"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn parallel_kill_still_resumes_identically() {
    // Killing a multi-worker campaign checkpoints *some* prefix-superset
    // (in-flight trials may finish after the kill trips, or none may
    // have); whatever survives, resume must converge to the baseline.
    let trials = 12;
    let campaign = Campaign::new(trials).master_seed(0x5eed_0004).threads(8);
    let baseline = Campaign::new(trials)
        .master_seed(0x5eed_0004)
        .run_supervised(|mut t| rng_trial(&mut t));
    let path = scratch("parallel_kill");
    let key = campaign.checkpoint_key(fnv1a64(b"resume sweep"));
    {
        let checkpoint = CampaignCheckpoint::open(&path, key).expect("open checkpoint");
        let completed = AtomicUsize::new(0);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            campaign.resume(&checkpoint, encode, decode, |mut trial| {
                if completed.load(Ordering::SeqCst) >= 5 {
                    panic!("simulated SIGKILL");
                }
                let value = rng_trial(&mut trial)?;
                completed.fetch_add(1, Ordering::SeqCst);
                Ok(value)
            })
        }));
    }
    let checkpoint = CampaignCheckpoint::open(&path, key).expect("reopen after kill");
    let resumed = campaign.resume(&checkpoint, encode, decode, |mut t| rng_trial(&mut t));
    assert_eq!(resumed, baseline, "parallel kill broke resume identity");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_fingerprint_mismatch() {
    let campaign = Campaign::new(4).master_seed(0x5eed_0003);
    let path = scratch("fingerprint");
    {
        let key = campaign.checkpoint_key(fnv1a64(b"config A"));
        CampaignCheckpoint::open(&path, key).expect("create");
    }
    let other = campaign.checkpoint_key(fnv1a64(b"config B"));
    match CampaignCheckpoint::open(&path, other) {
        Err(nightvision::CheckpointError::KeyMismatch { .. }) => {}
        Ok(_) => panic!("fingerprint mismatch must be rejected"),
        Err(e) => panic!("wrong error for fingerprint mismatch: {e}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Wide nv-rand-driven sweep: random campaign shapes, every prefix.
/// Run with `cargo test --features proptest`.
#[test]
#[cfg(feature = "proptest")]
fn resume_sweep_wide() {
    let mut rng = Rng::seed_from_u64(0x51de_ca5e);
    for _ in 0..8 {
        let trials = rng.gen_range(1usize..=24);
        let master_seed = rng.next_u64();
        sweep(trials, master_seed);
    }
}

// Keep the nv-rand import live in the always-on build too.
#[test]
fn trial_streams_feeding_the_sweep_are_reproducible() {
    let a: Vec<u64> = (0..4).map(|i| Rng::stream(7, i).next_u64()).collect();
    let b: Vec<u64> = (0..4).map(|i| Rng::stream(7, i).next_u64()).collect();
    assert_eq!(a, b);
}
