//! Determinism contract of the campaign engine on a real attack workload:
//! the merged aggregate of a noisy multi-trial GCD campaign must be
//! byte-identical for 1, 2 and 8 worker threads, and the nv-rand child
//! streams that drive it must be reproducible and pairwise distinct.

use nightvision::campaign::Campaign;
use nightvision::{NoiseModel, NvUser};
use nv_os::System;
use nv_rand::Rng;
use nv_uarch::{BtbStats, Core, Machine, Perturbation, UarchConfig};
use nv_victims::compile::{compile_gcd, CompileOptions};
use nv_victims::{GcdVictim, VictimConfig};

const TRIALS: usize = 6;
const MASTER_SEED: u64 = 0x00ca_4a16;

/// One merged campaign: per-trial `(secret, accuracy)` pairs in index
/// order plus the summed attacker-side BTB counters.
fn gcd_campaign(threads: usize) -> (Vec<(u64, f64)>, BtbStats) {
    Campaign::new(TRIALS)
        .master_seed(MASTER_SEED)
        .threads(threads)
        .run_fold(
            (Vec::new(), BtbStats::default()),
            |mut trial| {
                // Both the victim's secret and the attack's noise come from
                // trial-local state, so every trial is a pure function of
                // (master seed, index).
                let secret = trial.rng.gen_range(3u64..=u32::MAX as u64) | 1;
                let victim =
                    GcdVictim::build(secret, 65537, &VictimConfig::paper_hardened()).unwrap();
                let mut system = System::new(UarchConfig::default());
                let pid = system.spawn(victim.program().clone());
                let noise = NoiseModel::paper_gcd(trial.rng.next_u64());
                let mut attacker = NvUser::for_victim(&victim, noise).unwrap();
                let readings = attacker.leak_directions(&mut system, pid, 100_000).unwrap();
                let inferred = NvUser::infer_directions(&readings);
                let accuracy = NvUser::accuracy(&inferred, victim.directions());
                (secret, accuracy, system.core().btb().stats())
            },
            |(mut rows, mut total), (secret, accuracy, stats)| {
                rows.push((secret, accuracy));
                total.hits += stats.hits;
                total.misses += stats.misses;
                total.allocations += stats.allocations;
                total.deallocations += stats.deallocations;
                total.evictions += stats.evictions;
                (rows, total)
            },
        )
}

#[test]
fn merged_results_are_identical_across_thread_counts() {
    let serial = gcd_campaign(1);
    // The workload is real: the noisy attack still recovers nearly every
    // direction bit, so a determinism bug can't hide behind trivial output.
    assert!(serial.0.iter().all(|&(_, acc)| acc > 0.9), "{serial:?}");
    for threads in [2, 8] {
        assert_eq!(
            serial,
            gcd_campaign(threads),
            "diverged at {threads} threads"
        );
    }
}

#[test]
fn perturbed_trials_replay_from_their_seeds() {
    // A fault-injected simulation is still a pure function of
    // (master seed, trial index): the injector's seed is drawn from the
    // trial's child stream, so the injected eviction/jitter/squash
    // sequence — visible through cycle counts and the new
    // `external_evictions` counter — merges identically for any thread
    // count and replays from a re-derived stream.
    let noisy_trial = |mut rng: Rng| {
        let image = compile_gcd(
            &CompileOptions::default(),
            nv_isa::VirtAddr::new(0x40_0000),
            rng.gen_range(3u64..=u32::MAX as u64) | 1,
            65537,
        )
        .unwrap();
        let mut core = Core::new(UarchConfig {
            perturbation: Perturbation {
                seed: rng.next_u64(),
                eviction_interval: 5,
                jitter_amplitude: 4,
                squash_per_million: 2_000,
            },
            ..UarchConfig::default()
        });
        let mut machine = Machine::new(image.program().clone());
        core.run(&mut machine, 1_000_000);
        let mut quiet_core = Core::new(UarchConfig::default());
        let mut quiet_machine = Machine::new(image.program().clone());
        quiet_core.run(&mut quiet_machine, 1_000_000);
        (
            core.cycle(),
            quiet_core.cycle(),
            core.btb().stats().external_evictions,
        )
    };
    let campaign = |threads: usize| -> Vec<(u64, u64, u64)> {
        Campaign::new(TRIALS)
            .master_seed(MASTER_SEED ^ 0x7e57)
            .threads(threads)
            .run(|trial| noisy_trial(trial.rng))
    };
    let serial = campaign(1);
    // The injected squashes/resteers must actually cost cycles somewhere
    // (random BTB evictions mostly land on empty slots, so the cycle
    // delta — not the eviction counter — is the reliable firing signal).
    assert!(
        serial.iter().any(|&(noisy, quiet, _)| noisy > quiet),
        "injector never fired: {serial:?}"
    );
    for threads in [2, 8] {
        assert_eq!(serial, campaign(threads), "diverged at {threads} threads");
    }
    for (index, &expected) in serial.iter().enumerate() {
        let replayed = noisy_trial(Rng::stream(MASTER_SEED ^ 0x7e57, index as u64));
        assert_eq!(replayed, expected, "trial {index} did not replay");
    }
}

#[test]
fn child_streams_are_reproducible() {
    // The engine's stream-per-trial derivation is stable: re-deriving any
    // trial's generator from (master seed, index) replays the same values
    // the campaign used for that trial's secret.
    let rows = gcd_campaign(1).0;
    for (index, &(secret, _)) in rows.iter().enumerate() {
        let mut replay = Rng::stream(MASTER_SEED, index as u64);
        assert_eq!(replay.gen_range(3u64..=u32::MAX as u64) | 1, secret);
    }
}

#[test]
fn child_streams_are_pairwise_distinct() {
    let prefixes: Vec<Vec<u64>> = (0..64u64)
        .map(|index| {
            let mut rng = Rng::stream(MASTER_SEED, index);
            (0..8).map(|_| rng.next_u64()).collect()
        })
        .collect();
    for i in 0..prefixes.len() {
        for j in i + 1..prefixes.len() {
            assert_ne!(prefixes[i], prefixes[j], "streams {i} and {j} collide");
        }
    }
}
