//! End-to-end private-code fingerprinting (§6, §7.3): NV-S extraction →
//! trace slicing → set-intersection matching, scored against corpus
//! decoys and across compiler configurations.

use std::collections::BTreeSet;

use nightvision::fingerprint::{similarity, Fingerprinter, ReferenceFunction};
use nightvision::{trace, NvSupervisor};
use nv_corpus::{generate, CorpusConfig};
use nv_isa::VirtAddr;
use nv_os::Enclave;
use nv_uarch::{Core, UarchConfig};
use nv_victims::compile::{compile_gcd, CompileOptions, GccVersion, LibraryVersion, OptLevel};

fn extract_main_function(program: &nv_isa::Program) -> BTreeSet<u64> {
    let mut enclave = Enclave::new(program.clone());
    let mut core = Core::new(UarchConfig::default());
    let extracted = NvSupervisor::default()
        .extract_trace(&mut enclave, &mut core)
        .expect("extraction");
    trace::slice_extracted(&extracted)
        .into_iter()
        .max_by_key(|f| f.len())
        .map(|f| f.offset_set())
        .expect("at least one function sliced")
}

fn image(options: &CompileOptions) -> nv_victims::compile::CompiledFunction {
    compile_gcd(options, VirtAddr::new(0x40_0000), 0xbeef_1235, 65537).expect("compiles")
}

#[test]
fn gcd_ranks_first_among_corpus_decoys() {
    let gcd = image(&CompileOptions::default());
    let victim_set = extract_main_function(gcd.program());

    let mut fp = Fingerprinter::new();
    fp.add_reference(ReferenceFunction::new("gcd", gcd.static_pc_offsets()));
    let corpus = generate(&CorpusConfig {
        functions: 2_000,
        ..CorpusConfig::default()
    });
    for f in corpus.functions() {
        fp.add_reference(ReferenceFunction::new(
            format!("decoy#{}", f.id()),
            f.static_offsets().iter().copied(),
        ));
    }
    let best = fp.best_match(&victim_set).expect("references exist");
    assert_eq!(best.name, "gcd");
    assert!(
        best.score > 0.7,
        "self-similarity {:.3} should be high (paper: 0.758)",
        best.score
    );
    assert!(
        best.score < 1.0 + f64::EPSILON,
        "mismeasurements keep it from perfect"
    );
}

#[test]
fn corpus_traces_score_low_against_gcd() {
    let gcd = image(&CompileOptions::default());
    let reference: BTreeSet<u64> = gcd.static_pc_offsets().into_iter().collect();
    let corpus = generate(&CorpusConfig {
        functions: 500,
        min_insts: 30,
        ..CorpusConfig::default()
    });
    let high_scores = corpus
        .functions()
        .iter()
        .filter(|f| similarity(&f.trace_set(), &reference) > 0.9)
        .count();
    assert!(
        high_scores == 0,
        "{high_scores} unrelated 30+-instruction functions scored > 0.9"
    );
}

#[test]
fn figure13_version_block_structure() {
    // Traces of 2.5/2.15 victims match legacy references strongly and the
    // 2.16/3.1 references weakly — and vice versa.
    let opt = OptLevel::O2;
    let gcc = GccVersion::G7_5;
    let legacy = image(&CompileOptions {
        version: LibraryVersion::V2_5,
        opt,
        gcc,
    });
    let modern = image(&CompileOptions {
        version: LibraryVersion::V3_1,
        opt,
        gcc,
    });
    let legacy_set = extract_main_function(legacy.program());
    let modern_set = extract_main_function(modern.program());
    let legacy_ref: BTreeSet<u64> = legacy.static_pc_offsets().into_iter().collect();
    let modern_ref: BTreeSet<u64> = modern.static_pc_offsets().into_iter().collect();

    let within_legacy = similarity(&legacy_set, &legacy_ref);
    let across = similarity(&legacy_set, &modern_ref);
    let within_modern = similarity(&modern_set, &modern_ref);
    let across_back = similarity(&modern_set, &legacy_ref);
    assert!(within_legacy > 0.8, "{within_legacy}");
    assert!(within_modern > 0.8, "{within_modern}");
    assert!(within_legacy > across + 0.2, "{within_legacy} vs {across}");
    assert!(
        within_modern > across_back + 0.2,
        "{within_modern} vs {across_back}"
    );
}

#[test]
fn figure13_optimization_diagonal() {
    let version = LibraryVersion::V3_1;
    let gcc = GccVersion::G7_5;
    let images: Vec<_> = OptLevel::all()
        .map(|opt| image(&CompileOptions { version, opt, gcc }))
        .collect();
    let sets: Vec<BTreeSet<u64>> = images
        .iter()
        .map(|img| extract_main_function(img.program()))
        .collect();
    let refs: Vec<BTreeSet<u64>> = images
        .iter()
        .map(|img| img.static_pc_offsets().into_iter().collect())
        .collect();
    for (i, set) in sets.iter().enumerate() {
        let own = similarity(set, &refs[i]);
        assert!(own > 0.8, "diagonal [{i}] = {own}");
        for (j, reference) in refs.iter().enumerate() {
            if i != j {
                let cross = similarity(set, reference);
                assert!(
                    own > cross,
                    "[{i}][{i}]={own} must exceed [{i}][{j}]={cross}"
                );
            }
        }
    }
    // -O0 is drastically different from the optimized builds.
    assert!(similarity(&sets[0], &refs[1]) < 0.6);
}

#[test]
fn gcc_version_does_not_move_the_fingerprint() {
    let sims: Vec<f64> = GccVersion::all()
        .map(|gcc| {
            let img = image(&CompileOptions {
                version: LibraryVersion::V3_1,
                opt: OptLevel::O2,
                gcc,
            });
            let set = extract_main_function(img.program());
            let reference: BTreeSet<u64> = img.static_pc_offsets().into_iter().collect();
            similarity(&set, &reference)
        })
        .collect();
    assert!(
        sims.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
        "{sims:?}"
    );
}

#[test]
fn call_ret_slicing_recovers_the_function_entry() {
    let gcd = image(&CompileOptions::default());
    let mut enclave = Enclave::new(gcd.program().clone());
    let mut core = Core::new(UarchConfig::default());
    let extracted = NvSupervisor::default()
        .extract_trace(&mut enclave, &mut core)
        .expect("extraction");
    let functions = trace::slice_extracted(&extracted);
    assert_eq!(functions.len(), 1, "one call/ret pair in the image");
    assert_eq!(functions[0].entry, gcd.entry(), "entry located exactly");
    assert_eq!(
        functions[0].offsets.first(),
        Some(&0),
        "normalized traces start at zero (§6.4)"
    );
}

#[test]
fn nv_s_follows_code_across_pages() {
    // The controlled channel must handle mid-run page crossings: code that
    // jumps between two code pages faults at each crossing, and NV-S's
    // fault handler (set the next page executable, re-prime, re-step) has
    // to keep every measurement aligned.
    use nv_isa::{Assembler, Reg};
    use nv_os::StepExit;

    let mut asm = Assembler::new(VirtAddr::new(0x40_0000));
    asm.mov_ri(Reg::R0, 1);
    asm.call("far"); // into the second page
    asm.add_ri8(Reg::R0, 2);
    asm.call("far");
    asm.halt();
    asm.org(VirtAddr::new(0x40_1000 + 0x123)).unwrap(); // next page, odd offset
    asm.label("far");
    asm.add_ri8(Reg::R0, 1);
    asm.nop();
    asm.ret();
    let program = asm.finish().unwrap();

    // Ground truth.
    let mut truth = Vec::new();
    {
        let mut enclave = Enclave::new(program.clone());
        let mut core = Core::new(UarchConfig::default());
        loop {
            truth.push(enclave.ground_truth_pc());
            if !matches!(enclave.single_step(&mut core).exit, StepExit::Retired) {
                break;
            }
        }
    }

    let mut enclave = Enclave::new(program.clone());
    assert_eq!(enclave.code_pages().len(), 2, "two code pages");
    let mut core = Core::new(UarchConfig::default());
    let extracted = NvSupervisor::default()
        .extract_trace(&mut enclave, &mut core)
        .unwrap();
    assert_eq!(extracted.len(), truth.len());
    // Page numbers tracked through both crossings.
    let pages: Vec<u64> = extracted.steps().iter().map(|s| s.page).collect();
    assert!(pages.contains(&0x400) && pages.contains(&0x401));
    // The far function's instructions are located at byte granularity in
    // the second page (odd offset 0x123 exercises the final-byte pass).
    assert!(extracted.pcs().contains(&VirtAddr::new(0x40_1000 + 0x123)));
    assert!(extracted.accuracy_against(&truth) >= 0.6);
    // Two invocations of `far` slice into two function traces.
    let functions = trace::slice_extracted(&extracted);
    assert_eq!(functions.len(), 2);
    assert!(functions
        .iter()
        .all(|f| f.entry == VirtAddr::new(0x40_1123)));
}
