//! Property-based tests over the attack stack: NV-Core's match verdict
//! must track ground-truth overlap for randomized victims and windows.
//!
//! Randomized but deterministic: inputs come from fixed-seed `nv-rand`
//! streams, so a failure reproduces exactly. Compiled only with the
//! non-default `proptest` feature (`cargo test --features proptest`) to
//! keep the default test pass fast.

#![cfg(feature = "proptest")]

use nightvision::{AttackerRig, PwSpec};
use nv_isa::{Assembler, VirtAddr};
use nv_rand::Rng;
use nv_uarch::{Core, Machine, UarchConfig};

/// Builds a nop-sled victim covering `[start, start+len)`.
fn nop_victim(start: u64, len: u64) -> Machine {
    let mut asm = Assembler::new(VirtAddr::new(start));
    asm.pad_to(VirtAddr::new(start + len));
    asm.halt();
    Machine::new(asm.finish().expect("victim assembles"))
}

/// For straight-line (non-transfer) victims, NV-Core matches iff the
/// victim's executed bytes reach the window's signal byte from at or
/// below it — the paper's case-3/4 overlap semantics plus the
/// Takeaway-2 lookup lower bound.
#[test]
fn nvcore_match_tracks_overlap() {
    let mut rng = Rng::seed_from_u64(0xa77a_0001);
    for _ in 0..64 {
        let win_off = rng.gen_range(0u64..1000);
        let win_len = rng.gen_range(2u64..32);
        let vic_off = rng.gen_range(0u64..1000);
        let vic_len = rng.gen_range(1u64..64);

        let base = 0x40_0000u64;
        let window = PwSpec::new(VirtAddr::new(base + win_off), win_len).unwrap();
        let victim_start = base + vic_off;
        let victim_end = victim_start + vic_len; // exclusive of the halt

        let mut core = Core::new(UarchConfig::default());
        let mut rig = AttackerRig::new(vec![window]).unwrap();
        rig.calibrate(&mut core).unwrap();

        let mut victim = nop_victim(victim_start, vic_len);
        core.reset_frontend();
        core.run(&mut victim, 10_000);
        let matched = rig.probe(&mut core).unwrap()[0];

        // Ground truth. The false hit fires as soon as the *fetch bundle*
        // decodes past the predicted byte (§2.2: detection happens at
        // decode, not retirement), and a bundle runs from the fetch PC to
        // the predicted byte regardless of where the program "ends". So a
        // straight-line victim matches iff it fetches inside the signal
        // byte's 32-byte block at or below the signal byte — i.e. its
        // first PC is ≤ signal and its last executed PC (the halt at
        // `victim_end`) reaches the signal's block.
        let signal = window.signal_byte().value();
        let block_base = window.signal_byte().block_base().value();
        let expected = victim_start <= signal && victim_end >= block_base;
        assert_eq!(
            matched, expected,
            "window {window} victim [{victim_start:#x},{victim_end:#x})"
        );
    }
}

/// Probing is idempotent: after any victim interaction, a second
/// probe with no victim activity reports all-quiet (the channel
/// re-arms itself).
#[test]
fn probe_rearms() {
    let mut rng = Rng::seed_from_u64(0xa77a_0002);
    for _ in 0..64 {
        let win_off = rng.gen_range(0u64..500);
        let vic_off = rng.gen_range(0u64..500);
        let vic_len = rng.gen_range(1u64..48);

        let base = 0x40_0000u64;
        let window = PwSpec::new(VirtAddr::new(base + win_off), 16).unwrap();
        let mut core = Core::new(UarchConfig::default());
        let mut rig = AttackerRig::new(vec![window]).unwrap();
        rig.calibrate(&mut core).unwrap();
        let mut victim = nop_victim(base + vic_off, vic_len);
        core.reset_frontend();
        core.run(&mut victim, 10_000);
        let _ = rig.probe(&mut core).unwrap();
        assert_eq!(rig.probe(&mut core).unwrap(), vec![false]);
    }
}

/// Window splitting (the Fig. 10 traversal step) partitions exactly.
#[test]
fn pw_split_partitions() {
    let mut rng = Rng::seed_from_u64(0xa77a_0003);
    for _ in 0..256 {
        let start = rng.gen_range(0u64..u32::MAX as u64);
        let len = rng.gen_range(2u64..4096);
        let n = rng.gen_range(1u64..8);

        let pw = PwSpec::new(VirtAddr::new(start), len).unwrap();
        let parts = pw.split(n);
        assert_eq!(parts.first().unwrap().start(), pw.start());
        assert_eq!(parts.last().unwrap().end(), pw.end());
        for pair in parts.windows(2) {
            assert_eq!(pair[0].end(), pair[1].start());
            assert!(pair[0].len() >= 2);
        }
        let total: u64 = parts.iter().map(PwSpec::len).sum();
        assert_eq!(total, pw.len());
    }
}
