//! Reproducibility guarantees: every layer of the stack is a pure
//! function of its seeds and inputs, so the figures regenerate
//! bit-for-bit.

use nightvision::{NoiseModel, NvSupervisor, NvUser};
use nv_bench::noise::run_sweep;
use nv_bench::obs_profile::{campaign_profile, profile_nv_s};
use nv_corpus::{generate, CorpusConfig};
use nv_isa::VirtAddr;
use nv_obs::Recorder;
use nv_os::{Enclave, System};
use nv_uarch::{Core, Machine, Perturbation, UarchConfig};
use nv_victims::compile::{compile_gcd, CompileOptions};
use nv_victims::{GcdVictim, RsaKeygen, VictimConfig};

#[test]
fn simulator_runs_are_bit_identical() {
    let image = compile_gcd(
        &CompileOptions::default(),
        VirtAddr::new(0x40_0000),
        0xabc_def,
        65537,
    )
    .unwrap();
    let run = || {
        let mut machine = Machine::new(image.program().clone());
        let mut core = Core::new(UarchConfig::default());
        core.run(&mut machine, 1_000_000);
        (
            core.cycle(),
            core.stats(),
            machine.state().reg(nv_isa::Reg::R0),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn nv_s_extractions_are_identical() {
    let image = compile_gcd(&CompileOptions::default(), VirtAddr::new(0x40_0000), 48, 18).unwrap();
    let extract = || {
        let mut enclave = Enclave::new(image.program().clone());
        let mut core = Core::new(UarchConfig::default());
        NvSupervisor::default()
            .extract_trace(&mut enclave, &mut core)
            .unwrap()
            .pcs()
    };
    assert_eq!(extract(), extract());
}

#[test]
fn noisy_nv_u_is_seed_deterministic() {
    let run = RsaKeygen::new(1).next_run();
    let victim = GcdVictim::build(run.secret, run.public, &VictimConfig::paper_hardened()).unwrap();
    let attack = |seed: u64| {
        let mut system = System::new(UarchConfig::default());
        let pid = system.spawn(victim.program().clone());
        let mut attacker = NvUser::for_victim(&victim, NoiseModel::paper_gcd(seed)).unwrap();
        let readings = attacker.leak_directions(&mut system, pid, 100_000).unwrap();
        NvUser::infer_directions(&readings)
    };
    assert_eq!(attack(7), attack(7));
    // Determinism, not constancy: some seed in a small range must differ
    // (the noise model actually fires).
    let base = attack(0);
    assert!(
        (1..40).any(|seed| attack(seed) != base),
        "noise model never fired across 40 seeds"
    );
}

#[test]
fn noise_sweep_is_identical_across_thread_counts() {
    // The fault injector's seeds come from per-trial child streams, so
    // the whole eviction × jitter sweep — injected faults and all — is a
    // pure function of its master seed. This is the `repro_noise_sweep`
    // determinism contract at test scale.
    let serial = run_sweep(3, 1).to_json();
    for threads in [2, 8] {
        assert_eq!(
            serial,
            run_sweep(3, threads).to_json(),
            "noise sweep diverged at {threads} threads"
        );
    }
}

#[test]
fn quiet_perturbation_leaves_simulation_byte_identical() {
    // `Perturbation::none()` must not merely inject nothing: it must make
    // the core bit-indistinguishable from one that predates the injector,
    // even after noisy state is torn down via `set_perturbation`.
    let image = compile_gcd(
        &CompileOptions::default(),
        VirtAddr::new(0x40_0000),
        0xabc_def,
        65537,
    )
    .unwrap();
    let run = |core: &mut Core| {
        let mut machine = Machine::new(image.program().clone());
        core.run(&mut machine, 1_000_000);
        (
            core.cycle(),
            core.stats(),
            machine.state().reg(nv_isa::Reg::R0),
        )
    };
    let baseline = run(&mut Core::new(UarchConfig::default()));
    let mut explicit_none = Core::new(UarchConfig {
        perturbation: Perturbation::none(),
        ..UarchConfig::default()
    });
    assert_eq!(run(&mut explicit_none), baseline);
    let mut reset_to_none = Core::new(UarchConfig {
        perturbation: Perturbation::paper_calibrated(77),
        ..UarchConfig::default()
    });
    reset_to_none.set_perturbation(Perturbation::none());
    assert_eq!(run(&mut reset_to_none), baseline);
}

#[test]
fn observed_metrics_are_identical_across_thread_counts() {
    // `Campaign::run_observed` merges per-trial recorder metrics in
    // trial-index order, so the aggregate JSON — counters, penalty
    // cycles, phase histograms — is byte-identical for any worker count.
    let (serial_results, serial_metrics) = campaign_profile(5, 1);
    let serial_json = serial_metrics.to_json();
    for threads in [2, 8] {
        let (results, metrics) = campaign_profile(5, threads);
        assert_eq!(
            serial_results, results,
            "observed campaign results diverged at {threads} threads"
        );
        assert_eq!(
            serial_json,
            metrics.to_json(),
            "observed campaign metrics diverged at {threads} threads"
        );
    }
}

#[test]
fn attached_recorder_leaves_simulation_byte_identical() {
    // Observability must observe, not perturb: the same run with an
    // *enabled* recorder attached retires the same instructions in the
    // same cycles as the bare core — and repeated observed runs agree
    // with each other down to the metrics JSON.
    let image = compile_gcd(
        &CompileOptions::default(),
        VirtAddr::new(0x40_0000),
        0xabc_def,
        65537,
    )
    .unwrap();
    let run = |core: &mut Core| {
        let mut machine = Machine::new(image.program().clone());
        core.run(&mut machine, 1_000_000);
        (
            core.cycle(),
            core.stats(),
            machine.state().reg(nv_isa::Reg::R0),
        )
    };
    let baseline = run(&mut Core::new(UarchConfig::default()));
    let observed = || {
        let mut core = Core::new(UarchConfig::default());
        core.attach_obs(Recorder::new(1 << 12));
        let result = run(&mut core);
        let metrics = core.detach_obs().unwrap().metrics();
        (result, metrics.to_json())
    };
    let (first_result, first_metrics) = observed();
    assert_eq!(first_result, baseline);
    assert_eq!(observed(), (first_result, first_metrics));
}

#[test]
fn nv_s_profile_is_reproducible() {
    // The full observed NV-S extraction is a pure function of its inputs:
    // same phase breakdown, same event counts, run after run.
    let a = profile_nv_s();
    let b = profile_nv_s();
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.resolved_pcs, b.resolved_pcs);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
}

#[test]
fn corpus_and_keygen_are_pure_functions_of_seeds() {
    let c1 = generate(&CorpusConfig {
        functions: 64,
        ..CorpusConfig::default()
    });
    let c2 = generate(&CorpusConfig {
        functions: 64,
        ..CorpusConfig::default()
    });
    for (a, b) in c1.functions().iter().zip(c2.functions()) {
        assert_eq!(a.static_offsets(), b.static_offsets());
        assert_eq!(a.dynamic_offsets(), b.dynamic_offsets());
    }
    assert_eq!(RsaKeygen::new(9).runs(10), RsaKeygen::new(9).runs(10));
}

#[test]
fn cfr_randomization_depends_only_on_its_seed() {
    let build = |seed| {
        GcdVictim::build(48, 18, &VictimConfig::with_cfr(seed))
            .unwrap()
            .program()
            .symbol("gcd.cfr_trampoline")
            .unwrap()
    };
    assert_eq!(build(5), build(5));
    assert_ne!(build(5), build(6));
}
