//! End-to-end control-flow-leakage attacks (§5, §7.2) across the whole
//! stack: victims built by `nv-victims`, scheduled by `nv-os`, attacked
//! through `nightvision` on the `nv-uarch` core.

use nightvision::{NoiseModel, NvUser};
use nv_os::System;
use nv_uarch::{CpuGeneration, UarchConfig};
use nv_victims::{BnCmpVictim, GcdVictim, RsaKeygen, VictimConfig};

fn leak(victim: &nv_victims::VictimProgram, config: UarchConfig) -> Vec<bool> {
    let mut system = System::new(config);
    let pid = system.spawn(victim.program().clone());
    let mut attacker = NvUser::for_victim(victim, NoiseModel::none()).expect("attacker");
    let readings = attacker
        .leak_directions(&mut system, pid, 100_000)
        .expect("attack");
    NvUser::infer_directions(&readings)
}

#[test]
fn gcd_keys_leak_across_many_runs() {
    // 20 independent key generations; every direction recovered exactly.
    let mut keygen = RsaKeygen::new(0x5eed);
    for _ in 0..20 {
        let run = keygen.next_run();
        let victim = GcdVictim::build(run.secret, run.public, &VictimConfig::paper_hardened())
            .expect("victim");
        assert_eq!(
            leak(&victim, UarchConfig::default()),
            victim.directions(),
            "secret {:#x}",
            run.secret
        );
    }
}

#[test]
fn attack_works_on_every_cpu_generation() {
    // §2.3: the behaviour is consistent across SkyLake..IceLake. The rig
    // must use the generation's aliasing distance.
    use nightvision::{AttackerRig, PwSpec};
    use nv_isa::{Assembler, VirtAddr};
    use nv_uarch::{Core, Machine};
    for generation in CpuGeneration::all() {
        let config = UarchConfig::for_generation(generation);
        let distance = 1u64 << generation.tag_cutoff_bit();
        let mut asm = Assembler::new(VirtAddr::new(0x40_0200));
        for _ in 0..12 {
            asm.nop();
        }
        asm.halt();
        let mut victim = Machine::new(asm.finish().unwrap());
        let mut core = Core::new(config);
        let pw = PwSpec::new(VirtAddr::new(0x40_0200), 12).unwrap();
        let mut rig = AttackerRig::with_alias_distance(vec![pw], distance).unwrap();
        rig.calibrate(&mut core).unwrap();
        core.reset_frontend();
        core.run(&mut victim, 100);
        assert_eq!(
            rig.probe(&mut core).unwrap(),
            vec![true],
            "{generation:?} must leak at distance {distance:#x}"
        );
    }
}

#[test]
fn wrong_alias_distance_fails_on_icelake() {
    // An 8 GiB-aliased rig does not collide under IceLake's 34-bit cutoff.
    use nightvision::{AttackerRig, PwSpec};
    use nv_isa::{Assembler, VirtAddr};
    use nv_uarch::{Core, Machine};
    let config = UarchConfig::for_generation(CpuGeneration::IceLake);
    let mut asm = Assembler::new(VirtAddr::new(0x40_0200));
    for _ in 0..12 {
        asm.nop();
    }
    asm.halt();
    let mut victim = Machine::new(asm.finish().unwrap());
    let mut core = Core::new(config);
    let pw = PwSpec::new(VirtAddr::new(0x40_0200), 12).unwrap();
    let mut rig = AttackerRig::with_alias_distance(vec![pw], 1 << 33).unwrap();
    rig.calibrate(&mut core).unwrap();
    core.reset_frontend();
    core.run(&mut victim, 100);
    assert_eq!(
        rig.probe(&mut core).unwrap(),
        vec![false],
        "8 GiB aliasing must not work on IceLake"
    );
}

#[test]
fn cfr_and_alignment_do_not_stop_the_attack() {
    let victim = GcdVictim::build(0xfeed_f00d, 65537, &VictimConfig::with_cfr(123)).unwrap();
    assert_eq!(leak(&victim, UarchConfig::default()), victim.directions());
}

#[test]
fn bn_cmp_hundred_runs_are_perfect() {
    // §7.2: 100% accuracy across 100 different runs.
    let mut keygen = RsaKeygen::new(31337);
    for _ in 0..100 {
        let a = keygen.next_run().secret | 1;
        let b = keygen.next_run().secret | 1;
        let victim = BnCmpVictim::build(&[a], &[b], &VictimConfig::paper_hardened()).unwrap();
        assert_eq!(leak(&victim, UarchConfig::default()), victim.directions());
    }
}

#[test]
fn noisy_gcd_accuracy_is_about_99_percent() {
    // §7.2's 99.3% under the calibrated noise model (large sample).
    let mut keygen = RsaKeygen::new(2023);
    let mut total = 0usize;
    let mut correct = 0usize;
    for run_idx in 0..60 {
        let run = keygen.next_run();
        let victim =
            GcdVictim::build(run.secret, run.public, &VictimConfig::paper_hardened()).unwrap();
        let mut system = System::new(UarchConfig::default());
        let pid = system.spawn(victim.program().clone());
        let mut attacker = NvUser::for_victim(&victim, NoiseModel::paper_gcd(run_idx)).unwrap();
        let readings = attacker.leak_directions(&mut system, pid, 100_000).unwrap();
        let inferred = NvUser::infer_directions(&readings);
        total += victim.directions().len();
        correct += inferred
            .iter()
            .zip(victim.directions())
            .filter(|(a, b)| a == b)
            .count();
    }
    let accuracy = correct as f64 / total as f64;
    assert!(
        (0.97..1.0).contains(&accuracy),
        "noisy accuracy {accuracy} should sit near the paper's 0.993"
    );
}

#[test]
fn data_oblivious_rewrite_is_the_working_mitigation() {
    let victim = GcdVictim::build(0xfeed_f00d, 65537, &VictimConfig::data_oblivious()).unwrap();
    assert!(NvUser::for_victim(&victim, NoiseModel::none()).is_err());
}

#[test]
fn btb_hardening_mitigations_block_the_attack() {
    // §8.2: flushing and domain isolation jam the channel — every slice
    // reads the same pattern, so the inferred sequence is a constant
    // guess, not the secret.
    use nv_os::BtbMitigation;
    let victim = GcdVictim::build(0xbeef_1235, 65537, &VictimConfig::paper_hardened()).unwrap();
    for mitigation in [BtbMitigation::FlushOnSwitch, BtbMitigation::DomainIsolation] {
        let mut system = System::with_mitigation(UarchConfig::default(), mitigation);
        let pid = system.spawn(victim.program().clone());
        let mut attacker = NvUser::for_victim(&victim, NoiseModel::none()).unwrap();
        let readings = attacker.leak_directions(&mut system, pid, 100_000).unwrap();
        let inferred = NvUser::infer_directions(&readings);
        assert_ne!(
            inferred,
            victim.directions(),
            "{mitigation:?} must not leak the exact secret"
        );
        // The readings carry no per-iteration information: they are all
        // identical.
        assert!(
            readings.windows(2).all(|w| w[0] == w[1]),
            "{mitigation:?} should make every slice look the same"
        );
    }
}

#[test]
fn modexp_private_exponent_leaks_bit_for_bit() {
    // Square-and-multiply with a balanced dummy multiply: the classic RSA
    // target. The leaked direction sequence IS the private exponent.
    use nv_victims::ModExpVictim;
    for exponent in [0b1u64, 0b1011_0111, 0xbeef, (1 << 15) | 1] {
        let victim =
            ModExpVictim::build(7, exponent, 1_000_003, &VictimConfig::paper_hardened()).unwrap();
        let inferred = leak(&victim, UarchConfig::default());
        let leaked: u64 = inferred
            .iter()
            .enumerate()
            .map(|(i, &bit)| (bit as u64) << i)
            .sum();
        assert_eq!(leaked, exponent, "exponent recovered verbatim");
    }
}

#[test]
fn modexp_under_cfr_still_leaks() {
    use nv_victims::ModExpVictim;
    let victim = ModExpVictim::build(5, 0b1_1001_0101, 9973, &VictimConfig::with_cfr(17)).unwrap();
    assert_eq!(leak(&victim, UarchConfig::default()), victim.directions());
}

#[test]
fn modexp_data_oblivious_is_safe() {
    use nv_victims::ModExpVictim;
    let victim = ModExpVictim::build(5, 0b1011, 9973, &VictimConfig::data_oblivious()).unwrap();
    assert!(NvUser::for_victim(&victim, NoiseModel::none()).is_err());
}

#[test]
fn excess_preemptions_are_detected_and_discarded() {
    // §5.2: without sched_yield synchronization the attacker's slices
    // sometimes contain no victim progress; monitoring both sides detects
    // those (neither window matches) and the attack discards them. With
    // scheduling noise as the *only* noise, detection is exact and the
    // recovery stays perfect.
    let run = RsaKeygen::new(77).next_run();
    let victim = GcdVictim::build(run.secret, run.public, &VictimConfig::paper_hardened()).unwrap();
    let mut system = System::new(UarchConfig::default());
    let pid = system.spawn(victim.program().clone());
    // Seed chosen so the 5% preemption noise actually fires within this
    // victim's ~35 slices (not every seed does at that rate).
    let noise = NoiseModel {
        flip_prob: 0.0,
        ..NoiseModel::preemptive(6)
    };
    let mut attacker = NvUser::for_victim(&victim, noise).unwrap();
    let readings = attacker.leak_directions(&mut system, pid, 100_000).unwrap();
    // More slices than iterations (the excess preemptions) ...
    assert!(readings.len() > victim.directions().len());
    let discarded = readings.iter().filter(|r| r.inferred.is_none()).count();
    assert_eq!(
        discarded,
        readings.len() - victim.directions().len(),
        "every excess slice detected, every real one kept"
    );
    // ... and the secret is still recovered exactly.
    assert_eq!(NvUser::infer_directions(&readings), victim.directions());
}

#[test]
fn unsynchronized_mode_with_misreads_degrades_by_misalignment() {
    // §8.1: with *both* scheduling and measurement noise, a dropped real
    // slice desynchronizes the attacker — the limitation the paper assigns
    // to the preemptive-scheduling technique. Averaged over runs the
    // attack still recovers most bits, but individual runs can shear.
    let mut keygen = RsaKeygen::new(99);
    let mut accuracies = Vec::new();
    for seed in 0..15u64 {
        let run = keygen.next_run();
        let victim =
            GcdVictim::build(run.secret, run.public, &VictimConfig::paper_hardened()).unwrap();
        let mut system = System::new(UarchConfig::default());
        let pid = system.spawn(victim.program().clone());
        let mut attacker = NvUser::for_victim(&victim, NoiseModel::preemptive(seed)).unwrap();
        let readings = attacker.leak_directions(&mut system, pid, 100_000).unwrap();
        let inferred = NvUser::infer_directions(&readings);
        accuracies.push(NvUser::accuracy(&inferred, victim.directions()));
    }
    let mean = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
    assert!(mean >= 0.8, "mean unsynchronized accuracy {mean} collapsed");
    let perfect = accuracies.iter().filter(|&&a| a == 1.0).count();
    assert!(
        perfect >= accuracies.len() / 2,
        "most runs should still be exact ({perfect}/{})",
        accuracies.len()
    );
}
