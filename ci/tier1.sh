#!/bin/sh
# Tier-1 gate: the workspace must build, test and stay formatted with the
# network unplugged. `--offline` is the point, not an optimization — the
# workspace owns all of its dependencies (see DESIGN.md §6), so any
# regression that reintroduces a crates.io dependency fails here first.
set -eux

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Noise-robustness smoke: the sweep binary's own assertions gate clean
# accuracy at 100% and the paper-calibrated robust floor at 95%; on top,
# the emitted JSON must parse and pin the clean cell explicitly.
./target/release/repro_noise_sweep --smoke
python3 -m json.tool target/BENCH_noise_smoke.json > /dev/null
grep -q '"eviction_interval": 0, "jitter": 0, "squash_ppm": 0, "naive_accuracy": 1.0000, "robust_accuracy": 1.0000' \
    target/BENCH_noise_smoke.json
