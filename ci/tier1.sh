#!/bin/sh
# Tier-1 gate: the workspace must build, test and stay formatted with the
# network unplugged. `--offline` is the point, not an optimization — the
# workspace owns all of its dependencies (see DESIGN.md §6), so any
# regression that reintroduces a crates.io dependency fails here first.
set -eux

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings
