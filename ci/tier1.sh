#!/bin/sh
# Tier-1 gate: the workspace must build, test and stay formatted with the
# network unplugged. `--offline` is the point, not an optimization — the
# workspace owns all of its dependencies (see DESIGN.md §6), so any
# regression that reintroduces a crates.io dependency fails here first.
set -eux

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Noise-robustness smoke: the sweep binary's own assertions gate clean
# accuracy at 100% and the paper-calibrated robust floor at 95%; on top,
# the emitted JSON must parse and pin the clean cell explicitly. The
# clean-cell check parses the JSON instead of grepping for a formatted
# float, so a harmless change in float formatting cannot break CI while
# a real accuracy regression still does.
./target/release/repro_noise_sweep --smoke
python3 -m json.tool target/BENCH_noise_smoke.json > /dev/null
python3 - <<'EOF'
import json

with open("target/BENCH_noise_smoke.json") as f:
    sweep = json.load(f)
clean = sweep["grid"][0]
assert clean["eviction_interval"] == 0 and clean["jitter"] == 0 and clean["squash_ppm"] == 0, \
    f"grid[0] is not the clean cell: {clean}"
assert clean["naive_accuracy"] == 1.0, f"clean naive accuracy {clean['naive_accuracy']} != 1.0"
assert clean["robust_accuracy"] == 1.0, f"clean robust accuracy {clean['robust_accuracy']} != 1.0"
assert sweep["paper_calibrated"]["robust_accuracy"] >= 0.95, \
    f"paper-calibrated robust accuracy {sweep['paper_calibrated']['robust_accuracy']} below 0.95"
EOF

# Observability smoke: the profile binary's own assertions gate the
# disabled-recorder overhead at 2% and metrics thread-obliviousness; on
# top, both emitted documents must be well-formed JSON and the overhead
# verdict must be recorded as passing.
./target/release/repro_obs_profile --smoke
python3 -m json.tool target/BENCH_obs_smoke.json > /dev/null
python3 -m json.tool target/obs_trace_smoke.json > /dev/null
python3 - <<'EOF'
import json

with open("target/BENCH_obs_smoke.json") as f:
    obs = json.load(f)
overhead = obs["overhead"]
assert overhead["overhead_ok"] is True, f"disabled-mode overhead check failed: {overhead}"
assert overhead["ratio"] <= overhead["limit"], \
    f"overhead ratio {overhead['ratio']} exceeds limit {overhead['limit']}"
assert obs["nv_s"]["metrics"]["events"]["lbr_record"] > 0, "NV-S profile recorded no LBR events"

with open("target/obs_trace_smoke.json") as f:
    trace = json.load(f)
assert any(e["ph"] == "X" for e in trace["traceEvents"]), "Chrome trace has no span events"
EOF

# Resilience smoke: the demo binary's own assertions gate quarantined
# completion, retry healing and kill-at-k resume identity; on top, the
# emitted JSON must parse, the outcome census must cover the campaign,
# the completion-rate floor must hold and both identity flags must be
# recorded as passing.
./target/release/repro_resilience --smoke
python3 -m json.tool target/BENCH_resilience_smoke.json > /dev/null
python3 - <<'EOF'
import json

with open("target/BENCH_resilience_smoke.json") as f:
    res = json.load(f)
q = res["quarantine"]
assert q["completed"] + q["quarantined"] == res["trials"], \
    f"quarantine census does not cover the campaign: {q}"
assert q["panicked"] + q["deadline_exceeded"] == q["quarantined"], \
    f"quarantined outcomes are not all typed: {q}"
assert q["completion_rate"] >= 0.6, \
    f"completion rate {q['completion_rate']} under injected faults below the 0.6 floor"
assert res["retry"]["all_completed"] is True, f"retry demo left trials incomplete: {res['retry']}"
assert res["resume"]["resume_identical"] is True, \
    f"kill-and-resume output diverged: {res['resume']}"
assert res["corruption"]["corrupt_record_dropped"] is True, \
    f"checkpoint corruption was not absorbed: {res['corruption']}"
assert res["corruption"]["resume_identical"] is True, \
    f"resume after corruption diverged: {res['corruption']}"
EOF

# Campaign-server smoke: the load-test binary's own assertions gate
# throughput census, typed overload rejection and SIGKILL-and-restart
# digest identity at worker counts 1/2/8; on top, the emitted JSON must
# parse, the census must cover every submitted job with zero untyped
# failures, and both headline flags must be recorded as passing.
./target/release/repro_serve --smoke
python3 -m json.tool target/BENCH_serve_smoke.json > /dev/null
python3 - <<'EOF'
import json

with open("target/BENCH_serve_smoke.json") as f:
    serve = json.load(f)
t = serve["throughput"]
assert t["completed"] == t["small_jobs"] + t["nvs_jobs"], \
    f"throughput census does not cover the load: {t}"
assert t["untyped_failures"] == 0, f"a failure escaped the typed protocol: {t}"
o = serve["overload"]
assert o["overload_rejected_typed"] is True, f"overload rejections were not typed: {o}"
assert o["accepted"] + o["rejected"] == o["attempts"], f"admission census does not balance: {o}"
assert o["peak_queue_depth"] <= o["queue_cap"], \
    f"queue depth {o['peak_queue_depth']} breached cap {o['queue_cap']}"
r = serve["resume"]
assert r["resume_identical"] is True, \
    f"SIGKILL-and-restart digests diverged from the baseline: {r}"
assert r["kill_effective"] is True, f"no jobs were in flight at the kill: {r}"
assert [leg["workers"] for leg in r["legs"]] == [1, 2, 8], \
    f"resume identity must be proven at worker counts 1/2/8: {r}"
EOF

# Chaos-transport smoke: the chaos binary's own assertions gate the
# per-intensity census (every job in exactly one typed terminal, no
# trial outcome lost or duplicated, digests byte-identical to the quiet
# baseline) and client session resume across a SIGKILL behind the proxy;
# on top, the emitted JSON must parse, the quiet control cell must have
# injected nothing, at least one cell must have injected something, and
# the drill must hold at worker counts 1/2/8.
./target/release/repro_chaos --smoke
python3 -m json.tool target/BENCH_chaos_smoke.json > /dev/null
python3 - <<'EOF'
import json

with open("target/BENCH_chaos_smoke.json") as f:
    chaos = json.load(f)
cells = chaos["cells"]
quiet = cells[0]
assert quiet["intensity"] == 0.0, f"cells[0] is not the quiet control cell: {quiet}"
def injected(c):
    f = c["faults"]
    return f["resets"] + f["cuts"] + f["corruptions"] + f["stalls"] + \
        f["partial_writes"] + f["duplicates"]
assert injected(quiet) == 0, f"the quiet control cell injected faults: {quiet}"
assert any(injected(c) > 0 for c in cells), f"no cell injected any fault: {cells}"
for c in cells:
    assert c["completed"] == c["jobs"], f"a job missed its typed terminal: {c}"
    assert c["identical"] is True, f"a digest diverged from the quiet baseline: {c}"
    assert c["census_exact"] is True, f"a trial outcome was lost or duplicated: {c}"
d = chaos["drill"]
assert d["resume_identical"] is True, \
    f"a client session crossed the SIGKILL to a wrong result: {d}"
assert d["kill_effective"] is True, f"no jobs were in flight at the kill: {d}"
assert [leg["workers"] for leg in d["legs"]] == [1, 2, 8], \
    f"chaos resume must be proven at worker counts 1/2/8: {d}"
EOF
