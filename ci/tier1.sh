#!/bin/sh
# Tier-1 gate: the workspace must build, test and stay formatted with the
# network unplugged. `--offline` is the point, not an optimization — the
# workspace owns all of its dependencies (see DESIGN.md §6), so any
# regression that reintroduces a crates.io dependency fails here first.
set -eux

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Noise-robustness smoke: the sweep binary's own assertions gate clean
# accuracy at 100% and the paper-calibrated robust floor at 95%; on top,
# the emitted JSON must parse and pin the clean cell explicitly. The
# clean-cell check parses the JSON instead of grepping for a formatted
# float, so a harmless change in float formatting cannot break CI while
# a real accuracy regression still does.
./target/release/repro_noise_sweep --smoke
python3 -m json.tool target/BENCH_noise_smoke.json > /dev/null
python3 - <<'EOF'
import json

with open("target/BENCH_noise_smoke.json") as f:
    sweep = json.load(f)
clean = sweep["grid"][0]
assert clean["eviction_interval"] == 0 and clean["jitter"] == 0 and clean["squash_ppm"] == 0, \
    f"grid[0] is not the clean cell: {clean}"
assert clean["naive_accuracy"] == 1.0, f"clean naive accuracy {clean['naive_accuracy']} != 1.0"
assert clean["robust_accuracy"] == 1.0, f"clean robust accuracy {clean['robust_accuracy']} != 1.0"
assert sweep["paper_calibrated"]["robust_accuracy"] >= 0.95, \
    f"paper-calibrated robust accuracy {sweep['paper_calibrated']['robust_accuracy']} below 0.95"
EOF

# Observability smoke: the profile binary's own assertions gate the
# disabled-recorder overhead at 2% and metrics thread-obliviousness; on
# top, both emitted documents must be well-formed JSON and the overhead
# verdict must be recorded as passing.
./target/release/repro_obs_profile --smoke
python3 -m json.tool target/BENCH_obs_smoke.json > /dev/null
python3 -m json.tool target/obs_trace_smoke.json > /dev/null
python3 - <<'EOF'
import json

with open("target/BENCH_obs_smoke.json") as f:
    obs = json.load(f)
overhead = obs["overhead"]
assert overhead["overhead_ok"] is True, f"disabled-mode overhead check failed: {overhead}"
assert overhead["ratio"] <= overhead["limit"], \
    f"overhead ratio {overhead['ratio']} exceeds limit {overhead['limit']}"
assert obs["nv_s"]["metrics"]["events"]["lbr_record"] > 0, "NV-S profile recorded no LBR events"

with open("target/obs_trace_smoke.json") as f:
    trace = json.load(f)
assert any(e["ph"] == "X" for e in trace["traceEvents"]), "Chrome trace has no span events"
EOF
